#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Deadline-fidelity tests: the service-level latency math in
//! DESIGN.md/GUIDE.md rests on one kernel invariant — a wall-clock
//! deadline `D` threaded into the search can be overshot by at most the
//! VF2 poll quantum ([`qcp_graph::vf2::DEADLINE_STRIDE`] search nodes,
//! i.e. well under a millisecond of work) plus coarse-checkpoint noise.
//! These tests pin that bound at three layers: the raw VF2 meter, whole
//! placements of library circuits, and every circuit in the QASM corpus.

use std::ops::ControlFlow;
use std::time::{Duration, Instant};

use qcp_circuit::qasm;
use qcp_env::topologies::{Delays, TopologySpec};
use qcp_graph::generate;
use qcp_graph::vf2::{Budget, MonomorphismFinder, DEADLINE_STRIDE};
use qcp_place::{PlaceError, Placer, PlacerConfig, SearchBudget, Strategy};

/// Generous scheduler-noise allowance on top of the deadline. The kernel
/// overshoot itself is bounded by one poll stride (~sub-millisecond); the
/// slack absorbs coarse checkpoints between searches and CI jitter.
/// qft6@grid:8x8 runs for many *seconds* unbudgeted, so the bound stays
/// meaningful with room to spare.
const SLACK: Duration = Duration::from_millis(750);

fn grid_8x8() -> qcp_env::Environment {
    "grid:8x8"
        .parse::<TopologySpec>()
        .expect("spec")
        .build(Delays::uniform(10.0))
}

#[test]
fn the_poll_quantum_is_the_documented_constant() {
    // GUIDE.md §9 and DESIGN.md state the 1024-node quantum explicitly;
    // changing the stride is a conscious SLO change, not a tweak.
    assert_eq!(DEADLINE_STRIDE, 1024);
}

#[test]
fn an_expired_deadline_never_starts_the_search() {
    let pattern = generate::chain(6);
    let target = generate::grid(8, 8);
    let finder = MonomorphismFinder::new(&pattern, &target);
    let mut budget = Budget::new(None, Some(Instant::now() - Duration::from_millis(1)));
    let run = finder.for_each_budgeted(&mut budget, &mut |_| ControlFlow::Continue(()));
    assert_eq!(budget.nodes_visited(), 0, "expired meter must not search");
    assert_eq!(run.nodes, 0);
    assert!(budget.is_exhausted());
}

#[test]
fn kernel_overshoot_is_bounded_by_one_poll_stride() {
    // A deadline that expires mid-flight: after the search stops, the
    // nodes visited past the last in-time poll can be at most one stride.
    // With a deadline this tight the first poll (at node 1024) is already
    // late, so the total must land exactly on the stride boundary — the
    // strongest version of the overshoot bound.
    let pattern = generate::chain(6);
    let target = generate::grid(8, 8);
    let finder = MonomorphismFinder::new(&pattern, &target);
    for micros in [50, 200, 800] {
        let mut budget = Budget::new(None, Some(Instant::now() + Duration::from_micros(micros)));
        std::thread::sleep(Duration::from_micros(micros.saturating_mul(2)));
        let run = finder.for_each_budgeted(&mut budget, &mut |_| ControlFlow::Continue(()));
        assert!(
            run.nodes <= DEADLINE_STRIDE,
            "deadline overshot by {} nodes (> one stride of {DEADLINE_STRIDE})",
            run.nodes
        );
    }
}

#[test]
fn exact_placement_respects_wall_clock_deadlines() {
    let env = grid_8x8();
    let circuit = qcp_circuit::library::named("qft6").expect("library circuit");
    for deadline_ms in [5_u64, 25, 60] {
        let deadline = Duration::from_millis(deadline_ms);
        let config = PlacerConfig::with_threshold(env.connectivity_threshold().expect("threshold"))
            .strategy(Strategy::Exact)
            .budget(SearchBudget::unlimited().with_deadline(deadline));
        let placer = Placer::new(&env, config);
        let t0 = Instant::now();
        let result = placer.place(&circuit);
        let elapsed = t0.elapsed();
        assert!(
            elapsed <= deadline + SLACK,
            "deadline {deadline_ms} ms overshot: took {elapsed:?}"
        );
        // qft6@grid:8x8 cannot finish exact search in tens of
        // milliseconds; the budget error is the expected shape.
        assert!(
            matches!(result, Err(PlaceError::BudgetExhausted { .. })),
            "expected budget exhaustion at {deadline_ms} ms, got {result:?}"
        );
    }
}

#[test]
fn hybrid_placement_answers_within_the_deadline_on_the_qasm_corpus() {
    let env = grid_8x8();
    let corpus = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/qasm");
    let mut paths: Vec<_> = std::fs::read_dir(corpus)
        .expect("qasm corpus directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "qasm"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "empty corpus at {corpus}");

    let deadline = Duration::from_millis(100);
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("read corpus file");
        let parsed = qasm::parse(&text).expect("corpus parses");
        let config = PlacerConfig::with_threshold(env.connectivity_threshold().expect("threshold"))
            .strategy(Strategy::Hybrid)
            .budget(SearchBudget::unlimited().with_deadline(deadline));
        let placer = Placer::new(&env, config);
        let t0 = Instant::now();
        let outcome = placer.place(&parsed.circuit);
        let elapsed = t0.elapsed();
        assert!(
            elapsed <= deadline + SLACK,
            "{}: deadline overshot, took {elapsed:?}",
            path.display()
        );
        // Hybrid must *answer* under deadline pressure (degraded is
        // fine); only failing would break the service's 200-under-load
        // guarantee.
        let outcome = outcome
            .unwrap_or_else(|e| panic!("{}: hybrid failed under deadline: {e}", path.display()));
        let _ = outcome.resolution;
    }
}
