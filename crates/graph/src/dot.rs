//! Graphviz DOT export, used to regenerate the paper's figures.

use std::fmt::Write as _;

use crate::Graph;

/// Options controlling DOT output.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Graph name in the output header.
    pub name: String,
    /// Optional node labels; falls back to `v{i}` where absent.
    pub labels: Vec<String>,
    /// Emit edge weights as labels.
    pub show_weights: bool,
}

impl DotOptions {
    /// Creates options with the given graph name.
    pub fn named(name: impl Into<String>) -> Self {
        DotOptions {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Sets node labels (index-aligned).
    #[must_use]
    pub fn with_labels(mut self, labels: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.labels = labels.into_iter().map(Into::into).collect();
        self
    }

    /// Enables edge-weight labels.
    #[must_use]
    pub fn with_weights(mut self) -> Self {
        self.show_weights = true;
        self
    }
}

/// Renders `graph` in Graphviz DOT syntax.
///
/// ```
/// use qcp_graph::{generate, dot};
/// let g = generate::chain(3);
/// let out = dot::to_dot(&g, &dot::DotOptions::named("chain"));
/// assert!(out.starts_with("graph chain {"));
/// assert!(out.contains("n0 -- n1"));
/// ```
pub fn to_dot(graph: &Graph, options: &DotOptions) -> String {
    let mut out = String::new();
    let name = if options.name.is_empty() {
        "g"
    } else {
        &options.name
    };
    // fmt::Write into a String is infallible; results are ignored.
    let _ = writeln!(out, "graph {name} {{");
    for v in graph.nodes() {
        let label = options
            .labels
            .get(v.index())
            .cloned()
            .unwrap_or_else(|| format!("v{}", v.index()));
        let _ = writeln!(out, "  n{} [label=\"{}\"];", v.index(), escape(&label));
    }
    for (a, b, w) in graph.edges() {
        if options.show_weights {
            let _ = writeln!(out, "  n{} -- n{} [label=\"{}\"];", a.index(), b.index(), w);
        } else {
            let _ = writeln!(out, "  n{} -- n{};", a.index(), b.index());
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn dot_contains_all_parts() {
        let g = generate::ring(3);
        let out = to_dot(
            &g,
            &DotOptions::named("mol")
                .with_labels(["M", "C1", "C2"])
                .with_weights(),
        );
        assert!(out.contains("graph mol {"));
        assert!(out.contains("label=\"C1\""));
        assert!(out.contains("n0 -- n1 [label=\"1\"]"));
        assert!(out.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_fall_back_to_index() {
        let g = generate::chain(2);
        let out = to_dot(&g, &DotOptions::default());
        assert!(out.contains("label=\"v1\""));
    }

    #[test]
    fn quotes_are_escaped() {
        let g = generate::chain(1);
        let out = to_dot(&g, &DotOptions::default().with_labels([r#"a"b"#]));
        assert!(out.contains(r#"a\"b"#));
    }
}
