//! Rooted spanning trees.
//!
//! The SWAP routing algorithm of §5.2 "cuts all loops" in each half of a
//! bisected adjacency graph, producing a tree rooted at the endpoint of the
//! communication channel, and then propagates "bubbles" along the natural
//! partial order of that tree. [`RootedTree`] is that structure.

use std::collections::VecDeque;

use crate::{Graph, GraphError, NodeId, Result};

/// A spanning tree of (a connected subgraph of) a [`Graph`], rooted at a
/// designated node.
///
/// Node identifiers refer to the original graph. Children are ordered by
/// discovery, which is deterministic because [`Graph`] enumerates
/// neighbours in increasing node order.
#[derive(Clone, Debug)]
pub struct RootedTree {
    root: NodeId,
    /// `parent[i]` is `None` for the root and for nodes outside the tree.
    parent: Vec<Option<NodeId>>,
    /// Depth of each tree node; `None` outside the tree.
    depth: Vec<Option<u32>>,
    children: Vec<Vec<NodeId>>,
    /// Tree nodes in BFS discovery order (root first).
    order: Vec<NodeId>,
}

impl RootedTree {
    /// Builds a BFS spanning tree of the component of `root`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if `root` does not exist.
    pub fn bfs(graph: &Graph, root: NodeId) -> Result<Self> {
        if root.index() >= graph.node_count() {
            return Err(GraphError::NodeOutOfRange {
                node: root,
                node_count: graph.node_count(),
            });
        }
        let n = graph.node_count();
        let mut parent = vec![None; n];
        let mut depth = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        depth[root.index()] = Some(0);
        queue.push_back((root, 0u32));
        while let Some((v, d)) = queue.pop_front() {
            order.push(v);
            for u in graph.neighbors(v) {
                if depth[u.index()].is_none() {
                    depth[u.index()] = Some(d + 1);
                    parent[u.index()] = Some(v);
                    children[v.index()].push(u);
                    queue.push_back((u, d + 1));
                }
            }
        }
        Ok(RootedTree {
            root,
            parent,
            depth,
            children,
            order,
        })
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v`, or `None` for the root / nodes outside the tree.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Depth of `v` (root has depth 0), or `None` outside the tree.
    #[inline]
    pub fn depth(&self, v: NodeId) -> Option<u32> {
        self.depth[v.index()]
    }

    /// Children of `v` in discovery order.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Returns `true` if `v` belongs to the tree.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.depth[v.index()].is_some()
    }

    /// Returns `true` if `v` is a leaf of the tree (in the tree, no children).
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.contains(v) && self.children[v.index()].is_empty()
    }

    /// Number of nodes in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the tree is empty (never the case for trees built
    /// by [`RootedTree::bfs`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Tree nodes in BFS discovery order; the root comes first.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.order
    }

    /// Tree nodes ordered from the deepest to the root.
    ///
    /// This is the order in which the §5.2 bubble algorithm scans vertices:
    /// step `i` looks at depth `k − i`.
    pub fn bottom_up(&self) -> Vec<NodeId> {
        let mut v = self.order.clone();
        v.reverse();
        v
    }

    /// Height of the tree (max depth), or `None` for an empty tree.
    pub fn height(&self) -> Option<u32> {
        self.order.iter().filter_map(|&v| self.depth(v)).max()
    }

    /// The tree edges as `(parent, child)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.order
            .iter()
            .filter_map(move |&v| self.parent(v).map(|p| (p, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn chain_tree_rooted_at_end() {
        let g = generate::chain(5);
        let t = RootedTree::bfs(&g, n(0)).unwrap();
        assert_eq!(t.root(), n(0));
        assert_eq!(t.depth(n(4)), Some(4));
        assert_eq!(t.parent(n(3)), Some(n(2)));
        assert_eq!(t.height(), Some(4));
        assert!(t.is_leaf(n(4)));
        assert!(!t.is_leaf(n(2)));
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn tree_spans_component_only() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let t = RootedTree::bfs(&g, n(0)).unwrap();
        assert_eq!(t.len(), 3);
        assert!(!t.contains(n(3)));
        assert_eq!(t.depth(n(4)), None);
    }

    #[test]
    fn ring_tree_has_n_minus_one_edges() {
        let g = generate::ring(8);
        let t = RootedTree::bfs(&g, n(0)).unwrap();
        assert_eq!(t.edges().count(), 7);
        // BFS from node 0 on a ring: two branches of length 4.
        assert_eq!(t.height(), Some(4));
    }

    #[test]
    fn bottom_up_ends_at_root() {
        let g = generate::star(6);
        let t = RootedTree::bfs(&g, n(0)).unwrap();
        let order = t.bottom_up();
        assert_eq!(*order.last().unwrap(), n(0));
        // Depths never increase along bottom_up.
        let depths: Vec<u32> = order.iter().map(|&v| t.depth(v).unwrap()).collect();
        for w in depths.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn children_are_consistent_with_parents() {
        let g = generate::grid(3, 3);
        let t = RootedTree::bfs(&g, n(4)).unwrap();
        for v in g.nodes() {
            for &c in t.children(v) {
                assert_eq!(t.parent(c), Some(v));
                assert_eq!(t.depth(c), t.depth(v).map(|d| d + 1));
            }
        }
    }

    #[test]
    fn bad_root_rejected() {
        let g = generate::chain(3);
        assert!(RootedTree::bfs(&g, n(9)).is_err());
    }
}
