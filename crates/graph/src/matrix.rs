//! Symmetric square matrix storage.

use std::fmt;

/// A dense symmetric `n × n` matrix.
///
/// Physical environments (Definition 1 of the paper) are complete graphs
/// whose weights are naturally stored as a symmetric matrix with the
/// single-qubit gate delays on the diagonal. Only the lower triangle
/// (including the diagonal) is stored; `get(i, j)` and `get(j, i)` always
/// agree.
///
/// ```
/// use qcp_graph::SymMatrix;
/// let mut m = SymMatrix::new(3, 0.0);
/// m.set(0, 2, 5.5);
/// assert_eq!(m.get(2, 0), 5.5);
/// assert_eq!(m.get(1, 1), 0.0);
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SymMatrix<T> {
    n: usize,
    // Lower triangle in row-major order: row i holds i + 1 entries.
    data: Vec<T>,
}

impl<T: Clone> SymMatrix<T> {
    /// Creates an `n × n` symmetric matrix filled with `fill`.
    pub fn new(n: usize, fill: T) -> Self {
        SymMatrix {
            n,
            data: vec![fill; n * (n + 1) / 2],
        }
    }

    /// Side length of the matrix.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the `0 × 0` matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i < self.n && j < self.n,
            "index ({i}, {j}) out of bounds for n={}",
            self.n
        );
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        hi * (hi + 1) / 2 + lo
    }

    /// Returns the entry at `(i, j)` (equivalently `(j, i)`).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        self.data[self.offset(i, j)].clone()
    }

    /// Borrows the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn get_ref(&self, i: usize, j: usize) -> &T {
        &self.data[self.offset(i, j)]
    }

    /// Sets the entry at `(i, j)` (and symmetrically `(j, i)`).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: T) {
        let off = self.offset(i, j);
        self.data[off] = value;
    }

    /// Iterates over the stored lower-triangle entries as `(i, j, &value)`
    /// with `i <= j` — the diagonal is included.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> + '_ {
        (0..self.n).flat_map(move |hi| {
            (0..=hi).map(move |lo| (lo, hi, &self.data[hi * (hi + 1) / 2 + lo]))
        })
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for SymMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SymMatrix({}x{})", self.n, self.n)?;
        for i in 0..self.n {
            let row: Vec<String> = (0..self.n)
                .map(|j| format!("{:?}", self.get_ref(i, j)))
                .collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_set_get() {
        let mut m = SymMatrix::new(4, 0u32);
        m.set(1, 3, 7);
        m.set(3, 3, 9);
        assert_eq!(m.get(3, 1), 7);
        assert_eq!(m.get(1, 3), 7);
        assert_eq!(m.get(3, 3), 9);
        assert_eq!(m.get(0, 0), 0);
    }

    #[test]
    fn all_pairs_independent() {
        let n = 6;
        let mut m = SymMatrix::new(n, 0usize);
        let mut next = 1usize;
        for i in 0..n {
            for j in i..n {
                m.set(i, j, next);
                next += 1;
            }
        }
        let mut expect = 1usize;
        for i in 0..n {
            for j in i..n {
                assert_eq!(m.get(i, j), expect, "entry ({i},{j})");
                assert_eq!(m.get(j, i), expect);
                expect += 1;
            }
        }
    }

    #[test]
    fn iter_visits_lower_triangle_once() {
        let m = SymMatrix::new(3, 1.0f64);
        let entries: Vec<_> = m.iter().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(
            entries,
            vec![(0, 0), (0, 1), (1, 1), (0, 2), (1, 2), (2, 2)]
        );
    }

    #[test]
    fn empty_matrix() {
        let m: SymMatrix<f64> = SymMatrix::new(0, 0.0);
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let m = SymMatrix::new(2, 0.0);
        let _ = m.get(0, 2);
    }
}
