//! Breadth-first traversal, connectivity, and shortest paths.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Returns the nodes reachable from `start` in BFS order (including
/// `start` itself).
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn bfs_order(graph: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for u in graph.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// Hop distances from `start` to every node; `None` for unreachable nodes.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn bfs_distances(graph: &Graph, start: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back((start, 0u32));
    while let Some((v, d)) = queue.pop_front() {
        for u in graph.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                queue.push_back((u, d + 1));
            }
        }
    }
    dist
}

/// Hop distances from any node of `starts` (multi-source BFS).
///
/// Used by the SWAP router to measure how far a token is from the
/// communication channel, which may have several endpoints.
///
/// # Panics
///
/// Panics if any start node is out of range.
pub fn multi_source_distances(graph: &Graph, starts: &[NodeId]) -> Vec<Option<u32>> {
    let mut dist = vec![None; graph.node_count()];
    let mut queue = VecDeque::new();
    for &s in starts {
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            queue.push_back((s, 0u32));
        }
    }
    while let Some((v, d)) = queue.pop_front() {
        for u in graph.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                queue.push_back((u, d + 1));
            }
        }
    }
    dist
}

/// Returns `true` if the graph is connected (the empty graph and the
/// single-node graph are connected).
pub fn is_connected(graph: &Graph) -> bool {
    if graph.node_count() <= 1 {
        return true;
    }
    bfs_order(graph, NodeId::new(0)).len() == graph.node_count()
}

/// Partitions the nodes into connected components, each in BFS order.
/// Components are listed in order of their smallest node.
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; graph.node_count()];
    let mut components = Vec::new();
    for v in graph.nodes() {
        if seen[v.index()] {
            continue;
        }
        let comp = bfs_order(graph, v);
        for &u in &comp {
            seen[u.index()] = true;
        }
        components.push(comp);
    }
    components
}

/// Returns a shortest (fewest hops) path from `a` to `b`, inclusive of both
/// endpoints, or `None` if `b` is unreachable.
///
/// # Panics
///
/// Panics if `a` or `b` is out of range.
pub fn shortest_path(graph: &Graph, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
    if a == b {
        return Some(vec![a]);
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; graph.node_count()];
    let mut seen = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    seen[a.index()] = true;
    queue.push_back(a);
    while let Some(v) = queue.pop_front() {
        for u in graph.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                prev[u.index()] = Some(v);
                if u == b {
                    let mut path = vec![b];
                    let mut cur = b;
                    while let Some(p) = prev[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(u);
            }
        }
    }
    None
}

/// Diameter (longest shortest path) of a connected graph, or `None` if the
/// graph is disconnected or empty.
pub fn diameter(graph: &Graph) -> Option<u32> {
    if graph.node_count() == 0 || !is_connected(graph) {
        return None;
    }
    let mut best = 0;
    for v in graph.nodes() {
        for d in bfs_distances(graph, v).into_iter().flatten() {
            best = best.max(d);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn bfs_covers_component() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let order = bfs_order(&g, n(0));
        assert_eq!(order, vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn distances_on_chain() {
        let g = generate::chain(5);
        let d = bfs_distances(&g, n(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn distances_unreachable() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, n(0));
        assert_eq!(d[2], None);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let g = generate::chain(6);
        let d = multi_source_distances(&g, &[n(0), n(5)]);
        assert_eq!(
            d,
            vec![Some(0), Some(1), Some(2), Some(2), Some(1), Some(0)]
        );
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(!is_connected(&Graph::new(2)));
        assert!(is_connected(&generate::ring(7)));
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!is_connected(&g));
    }

    #[test]
    fn components_partition_nodes() {
        let g = Graph::from_edges(6, [(0, 2), (2, 4), (1, 3)]).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 2, 1]);
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn shortest_path_on_ring() {
        let g = generate::ring(6);
        let p = shortest_path(&g, n(0), n(3)).unwrap();
        assert_eq!(p.len(), 4); // 3 hops either way
        assert_eq!(p[0], n(0));
        assert_eq!(p[3], n(3));
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_trivial_and_missing() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert_eq!(shortest_path(&g, n(1), n(1)), Some(vec![n(1)]));
        assert_eq!(shortest_path(&g, n(0), n(2)), None);
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&generate::chain(5)), Some(4));
        assert_eq!(diameter(&generate::ring(6)), Some(3));
        assert_eq!(diameter(&generate::complete(4)), Some(1));
        assert_eq!(diameter(&Graph::new(2)), None);
    }
}
