//! Graph substrate for quantum circuit placement.
//!
//! This crate provides every graph-theoretic building block used by the
//! placement heuristics of Maslov, Falconer and Mosca's *Quantum Circuit
//! Placement* (DAC 2007 / TCAD 2008):
//!
//! * [`Graph`] — a simple undirected graph with `f64` edge weights,
//!   the common representation for both *physical environments* (molecules)
//!   and circuit *interaction graphs*;
//! * [`vf2`] — a from-scratch VF2 subgraph **monomorphism** enumerator,
//!   replacing the VFLib C++ library used by the paper's implementation;
//! * [`bisection`] — balanced **connected bisection** and the constructive
//!   separator of the paper's Appendix (Theorem 1), the backbone of the
//!   linear-depth SWAP routing algorithm of §5.2;
//! * [`spanning`] — BFS spanning trees rooted at communication channels;
//! * [`hamiltonian`] — a Hamiltonian-cycle backtracking solver used to
//!   validate the NP-completeness reduction of §4;
//! * [`generate`] — deterministic and random graph generators for tests and
//!   benchmarks;
//! * [`dot`] — Graphviz export for figures.
//!
//! # Example
//!
//! ```
//! use qcp_graph::{Graph, vf2::MonomorphismFinder};
//!
//! // A 3-vertex chain pattern embeds into a 4-cycle in 8 ways.
//! let pattern = Graph::from_edges(3, [(0, 1), (1, 2)])?;
//! let target = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
//! let maps = MonomorphismFinder::new(&pattern, &target).find_all();
//! assert_eq!(maps.len(), 8);
//! # Ok::<(), qcp_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
// Unit tests may unwrap freely; library code must not (workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod bisection;
pub mod canonical;
pub mod dot;
mod error;
pub mod generate;
mod graph;
pub mod hamiltonian;
mod matrix;
mod node;
pub mod spanning;
pub mod traversal;
pub mod vf2;

pub use error::GraphError;
pub use graph::{Edge, Graph};
pub use matrix::SymMatrix;
pub use node::NodeId;

/// Convenience result alias used throughout the crate.
pub type Result<T, E = GraphError> = std::result::Result<T, E>;
