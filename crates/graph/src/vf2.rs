//! Subgraph monomorphism search (VF2-style).
//!
//! The basic placement stage of §5.1 asks: can the *interaction graph* of a
//! workspace (two-qubit gates read so far) be aligned along the *fastest
//! interactions* of the physical environment? That is a subgraph
//! **monomorphism** question: an injective map `f` from pattern nodes to
//! target nodes such that every pattern edge maps to a target edge (target
//! edges without a pattern preimage are fine — unused couplings are simply
//! refocussed away).
//!
//! The paper's implementation delegated this to the VFLib C++ library
//! (reference 27 of the paper); this module is a from-scratch replacement
//! implementing the VF2
//! candidate-pair scheme with degree-based pruning and a deterministic
//! search order. Enumeration can be capped at `k` results, which the placer
//! uses with `k = 100` exactly as in §5.3.
//!
//! Searches can also run under a [`Budget`] (a node cap and/or wall-clock
//! deadline): [`MonomorphismFinder::for_each_budgeted`] charges the meter
//! one unit per visited search node and stops early with
//! [`Outcome::BudgetExhausted`] — plus the deepest partial assignment
//! found — once the meter trips. This is the kernel the anytime placement
//! strategies in `qcp_place::strategy` build on.
//!
//! # Example
//!
//! ```
//! use qcp_graph::{Graph, vf2::MonomorphismFinder};
//!
//! // Triangle into K4: 4 * 3 * 2 = 24 monomorphisms.
//! let tri = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)])?;
//! let k4 = Graph::from_edges(4, [(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)])?;
//! assert_eq!(MonomorphismFinder::new(&tri, &k4).count(), 24);
//! # Ok::<(), qcp_graph::GraphError>(())
//! ```

use std::ops::ControlFlow;
use std::time::Instant;

use crate::{Graph, NodeId};

/// How often the wall-clock deadline is polled, in visited search nodes.
/// A search node costs well under a microsecond, so a stride of 1024 keeps
/// the overshoot below a millisecond while keeping `Instant::now` calls off
/// the hot path.
///
/// Public because it is the *poll quantum* that service-level latency math
/// builds on: a [`Budget`] deadline can be overshot by at most one stride
/// of kernel nodes (plus whatever single coarse-grained
/// [`Budget::consume`] checkpoint is in flight) before the search stops.
/// The deadline-fidelity property tests in `qcp_place` pin this bound.
pub const DEADLINE_STRIDE: u64 = 1024;

/// A node/deadline budget for [`MonomorphismFinder::for_each_budgeted`].
///
/// The budget is a *meter*: it accumulates visited search nodes across
/// every search it is threaded through, so one `Budget` can govern a whole
/// placement request (workspace-extraction feasibility checks plus
/// candidate enumeration). Node budgets are deterministic — the search
/// visits the same nodes on every machine — while deadlines trade that
/// determinism for a wall-clock guarantee.
#[derive(Clone, Debug)]
pub struct Budget {
    max_nodes: u64,
    deadline: Option<Instant>,
    nodes: u64,
    exhausted: bool,
}

impl Budget {
    /// A budget that never exhausts.
    pub fn unlimited() -> Self {
        Budget::new(None, None)
    }

    /// Caps the total number of visited search nodes (0 exhausts on the
    /// first node).
    pub fn max_nodes(n: u64) -> Self {
        Budget::new(Some(n), None)
    }

    /// Exhausts once the wall clock passes `at`.
    pub fn deadline(at: Instant) -> Self {
        Budget::new(None, Some(at))
    }

    /// A budget from an optional node cap and an optional deadline.
    pub fn new(max_nodes: Option<u64>, deadline: Option<Instant>) -> Self {
        Budget {
            max_nodes: max_nodes.unwrap_or(u64::MAX),
            deadline,
            nodes: 0,
            exhausted: false,
        }
    }

    /// Total search nodes charged to this meter so far.
    pub fn nodes_visited(&self) -> u64 {
        self.nodes
    }

    /// Nodes left before the cap trips (`u64::MAX` when uncapped).
    /// Parallel drivers use this to hand each worker the worst-case
    /// remaining allowance and reconcile afterwards.
    pub fn remaining_nodes(&self) -> u64 {
        self.max_nodes.saturating_sub(self.nodes)
    }

    /// The wall-clock deadline, if any, shared verbatim with workers so
    /// every thread polls the same instant.
    pub fn deadline_instant(&self) -> Option<Instant> {
        self.deadline
    }

    /// Trips the meter without charging further nodes. Drivers that
    /// meter work in schedule-independent bulk (charge first, then
    /// execute) use this to report exhaustion at exactly the charged
    /// count regardless of how the work was interleaved.
    pub fn exhaust(&mut self) {
        self.exhausted = true;
    }

    /// Returns `true` once the budget has tripped; it never untrips.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Charges `n` units and polls the deadline immediately. Meant for
    /// coarse-grained checkpoints outside the search kernel (one unit per
    /// candidate scored, per annealing move, …), where each unit is far
    /// more expensive than a search node. Returns `false` once exhausted.
    pub fn consume(&mut self, n: u64) -> bool {
        if self.exhausted || !self.poll_deadline() {
            return false;
        }
        let next = self.nodes.saturating_add(n);
        if n > 0 && next > self.max_nodes {
            self.exhausted = true;
            return false;
        }
        self.nodes = next;
        true
    }

    /// The kernel-side charge: one search node, with the deadline polled
    /// every [`DEADLINE_STRIDE`] nodes.
    #[inline]
    fn visit(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        if self.nodes >= self.max_nodes {
            self.exhausted = true;
            return false;
        }
        self.nodes += 1;
        if self.nodes.is_multiple_of(DEADLINE_STRIDE) {
            self.poll_deadline()
        } else {
            true
        }
    }

    fn poll_deadline(&mut self) -> bool {
        if let Some(at) = self.deadline {
            if Instant::now() >= at {
                self.exhausted = true;
                return false;
            }
        }
        true
    }
}

/// How a budgeted search ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The search space was exhausted (or the visitor broke out).
    Complete,
    /// The budget tripped before the search space was covered.
    BudgetExhausted,
}

/// The report of one [`MonomorphismFinder::for_each_budgeted`] call.
#[derive(Clone, Debug)]
pub struct BudgetedRun {
    /// Whether the search completed or was cut by the budget.
    pub outcome: Outcome,
    /// Search nodes visited by this call (the meter itself accumulates
    /// across calls).
    pub nodes: u64,
    /// The deepest partial assignment reached, as `(pattern, target)`
    /// pairs in the internal variable order — the "best partial" a caller
    /// can seed a heuristic with after [`Outcome::BudgetExhausted`].
    pub best_partial: Vec<(NodeId, NodeId)>,
}

/// A subgraph-monomorphism search between a pattern and a target graph.
///
/// The search is deterministic: pattern nodes are processed in a
/// connectivity-aware static order, target candidates in increasing node
/// index. Construct with [`MonomorphismFinder::new`], optionally cap
/// enumeration with [`limit`](MonomorphismFinder::limit), then call
/// [`exists`](MonomorphismFinder::exists),
/// [`count`](MonomorphismFinder::count),
/// [`find_first`](MonomorphismFinder::find_first),
/// [`find_all`](MonomorphismFinder::find_all) or
/// [`for_each`](MonomorphismFinder::for_each).
#[derive(Debug)]
pub struct MonomorphismFinder<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    limit: Option<usize>,
}

impl<'a> MonomorphismFinder<'a> {
    /// Creates a finder for maps from `pattern` into `target`.
    pub fn new(pattern: &'a Graph, target: &'a Graph) -> Self {
        MonomorphismFinder {
            pattern,
            target,
            limit: None,
        }
    }

    /// Caps enumeration at `k` monomorphisms (the paper uses `k = 100`).
    #[must_use]
    pub fn limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// Returns `true` if at least one monomorphism exists.
    pub fn exists(&self) -> bool {
        let mut found = false;
        self.search(&mut |_| {
            found = true;
            ControlFlow::Break(())
        });
        found
    }

    /// Counts monomorphisms (up to the configured limit, if any).
    pub fn count(&self) -> usize {
        let mut n = 0usize;
        let cap = self.limit;
        self.search(&mut |_| {
            n += 1;
            match cap {
                Some(k) if n >= k => ControlFlow::Break(()),
                _ => ControlFlow::Continue(()),
            }
        });
        n
    }

    /// Returns the first monomorphism in search order, if any, as a map
    /// from pattern index to target node.
    pub fn find_first(&self) -> Option<Vec<NodeId>> {
        let mut out = None;
        self.search(&mut |m| {
            out = Some(m.to_vec());
            ControlFlow::Break(())
        });
        out
    }

    /// Collects monomorphisms (up to the configured limit, if any).
    pub fn find_all(&self) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        let cap = self.limit;
        self.search(&mut |m| {
            out.push(m.to_vec());
            match cap {
                Some(k) if out.len() >= k => ControlFlow::Break(()),
                _ => ControlFlow::Continue(()),
            }
        });
        out
    }

    /// Invokes `visit` for every monomorphism until it breaks or the search
    /// space is exhausted. The slice maps pattern index `i` to its image.
    ///
    /// The configured [`limit`](MonomorphismFinder::limit) is *not* applied
    /// here; breaking is the caller's responsibility.
    pub fn for_each(&self, visit: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>) {
        self.search(visit);
    }

    /// Budget-aware [`for_each`](MonomorphismFinder::for_each): the search
    /// charges one unit of `budget` per visited node and stops early —
    /// with [`Outcome::BudgetExhausted`] and the best (deepest) partial
    /// assignment found — once the meter trips. A search driven by an
    /// already-exhausted (or deadline-expired) meter visits nothing and
    /// reports [`Outcome::BudgetExhausted`] immediately, even for trivial
    /// searches; a *live* meter on a search that needs zero nodes (empty
    /// pattern, pattern wider than the target) completes truthfully.
    ///
    /// Solutions are visited in exactly the order of
    /// [`for_each`](MonomorphismFinder::for_each); a budget only removes a
    /// suffix of the enumeration, never reorders it.
    pub fn for_each_budgeted(
        &self,
        budget: &mut Budget,
        visit: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> BudgetedRun {
        // Entry poll: honour exhaustion (and expired deadlines) before
        // the trivial early exits in `run`, which never touch the probe.
        if !budget.consume(0) {
            return BudgetedRun {
                outcome: Outcome::BudgetExhausted,
                nodes: 0,
                best_partial: Vec::new(),
            };
        }
        let before = budget.nodes_visited();
        let info = self.run(&mut *budget, visit);
        BudgetedRun {
            outcome: if info.budget_cut {
                Outcome::BudgetExhausted
            } else {
                Outcome::Complete
            },
            nodes: budget.nodes_visited() - before,
            best_partial: info.best_partial,
        }
    }

    /// Budget-aware existence check: `Some(answer)` when the search
    /// settled the question within budget, `None` when the budget tripped
    /// first (the answer is unknown).
    pub fn exists_budgeted(&self, budget: &mut Budget) -> Option<bool> {
        let mut found = false;
        let run = self.for_each_budgeted(budget, &mut |_| {
            found = true;
            ControlFlow::Break(())
        });
        match (found, run.outcome) {
            (true, _) => Some(true),
            (false, Outcome::Complete) => Some(false),
            (false, Outcome::BudgetExhausted) => None,
        }
    }

    /// Budget-aware solution collection over a root-decomposed search,
    /// optionally pruned by target-node orbits and spread across worker
    /// threads.
    ///
    /// The search tree is split at the root: one subtree per depth-0
    /// candidate of the first pattern node (in increasing target index,
    /// exactly the sequential candidate order). Subtrees are independent,
    /// so workers claim them from an atomic cursor and run each under a
    /// private meter; a deterministic *replay merge* then reconciles the
    /// per-subtree results against the shared [`Budget`] in root order —
    /// accepting each solution only if the sequential search would have
    /// reached it before the cap — so the returned solutions, the charged
    /// node count, and the outcome are bit-identical to `jobs = 1` for
    /// any worker count (node budgets; wall-clock deadlines trade that
    /// determinism for latency, as everywhere else). Only
    /// [`BudgetedRun::best_partial`] may differ across worker counts.
    ///
    /// `root_orbits` (target-node orbit ids, e.g. from
    /// `canonical::automorphisms`) keeps only the first root per orbit:
    /// sound when the caller wants one representative per symmetry class
    /// — existence checks and symmetric-candidate enumeration — not full
    /// enumeration.
    ///
    /// The configured [`limit`](MonomorphismFinder::limit) caps the
    /// collected solutions; enumeration stops at the limit exactly where
    /// the sequential visitor would have broken.
    pub fn collect_budgeted(
        &self,
        budget: &mut Budget,
        opts: &ParallelOptions<'_>,
    ) -> (Vec<Vec<NodeId>>, BudgetedRun) {
        let exhausted_run = || BudgetedRun {
            outcome: Outcome::BudgetExhausted,
            nodes: 0,
            best_partial: Vec::new(),
        };
        let complete_run = |nodes| BudgetedRun {
            outcome: Outcome::Complete,
            nodes,
            best_partial: Vec::new(),
        };
        if !budget.consume(0) {
            return (Vec::new(), exhausted_run());
        }
        let pn = self.pattern.node_count();
        let tn = self.target.node_count();
        if pn > tn {
            return (Vec::new(), complete_run(0));
        }
        if pn == 0 {
            // The empty map is the unique monomorphism; it costs no
            // search nodes, mirroring `run`.
            return (vec![Vec::new()], complete_run(0));
        }
        let order = self.variable_order();
        let p0 = order[0];
        let p0_deg = self.pattern.degree(p0);
        // Depth-0 candidates: unused ∩ degree-mask, with the look-ahead
        // cut degenerate to the same degree test (all targets unused).
        let mut roots: Vec<usize> = (0..tn)
            .filter(|&w| self.target.degree(NodeId::new(w)) >= p0_deg)
            .collect();
        if let Some(orbits) = opts.root_orbits {
            debug_assert_eq!(orbits.len(), tn);
            let mut seen = std::collections::HashSet::new();
            roots.retain(|&w| seen.insert(orbits.get(w).copied().unwrap_or(w)));
        }
        let cap_left = budget.remaining_nodes();
        if cap_left == 0 {
            // The depth-0 entry visit itself trips the meter.
            budget.exhausted = true;
            return (Vec::new(), exhausted_run());
        }
        let deadline = budget.deadline;
        let mut merge = Merge {
            used: 1, // the depth-0 entry visit
            cap_left,
            limit: self.limit,
            out: Vec::new(),
            best_depth: 0,
            best_partial: Vec::new(),
            exhausted: false,
            done: false,
        };
        let jobs = opts.jobs.max(1).min(roots.len().max(1));
        if jobs <= 1 {
            for &root in &roots {
                if merge.done {
                    break;
                }
                let remaining = merge.cap_left - merge.used;
                if remaining == 0 {
                    // The next subtree's entry visit would trip.
                    merge.exhausted = true;
                    break;
                }
                let local_limit = self.limit.map(|k| k.saturating_sub(merge.out.len()));
                let result = self.run_root(&order, root, remaining, deadline, local_limit);
                merge.absorb(result);
            }
        } else {
            let subtree_cap = cap_left - 1;
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let shared: Vec<std::sync::Mutex<Option<RootResult>>> =
                roots.iter().map(|_| std::sync::Mutex::new(None)).collect();
            let progress = std::sync::Mutex::new(PrefixProgress {
                next: 0,
                used: 1,
                accepted: 0,
                decided: false,
            });
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    scope.spawn(|| loop {
                        if progress.lock().is_ok_and(|p| p.decided) {
                            break;
                        }
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= roots.len() {
                            break;
                        }
                        let result =
                            self.run_root(&order, roots[i], subtree_cap, deadline, self.limit);
                        if let Ok(mut slot) = shared[i].lock() {
                            *slot = Some(result);
                        }
                        // Advance the contiguous done-prefix and decide
                        // (conservatively, with exactly the merge's math)
                        // whether the outcome is already fixed, so idle
                        // workers stop claiming doomed roots.
                        if let Ok(mut p) = progress.lock() {
                            while !p.decided && p.next < roots.len() {
                                let Ok(guard) = shared[p.next].lock() else {
                                    break;
                                };
                                let Some(r) = guard.as_ref() else { break };
                                let remaining = cap_left - p.used;
                                if remaining == 0 || r.cut || r.deadline_cut || r.nodes > remaining
                                {
                                    p.decided = true;
                                    break;
                                }
                                p.accepted += r.solutions.len();
                                p.used += r.nodes;
                                p.next += 1;
                                if self.limit.is_some_and(|k| p.accepted >= k) {
                                    p.decided = true;
                                }
                            }
                        }
                    });
                }
            });
            for slot in shared {
                if merge.done {
                    break;
                }
                if merge.cap_left - merge.used == 0 {
                    merge.exhausted = true;
                    break;
                }
                let Some(result) = slot.lock().ok().and_then(|mut s| s.take()) else {
                    // Roots past the decided prefix were never claimed;
                    // the merge must already have terminated by now.
                    debug_assert!(merge.done || merge.exhausted);
                    break;
                };
                merge.absorb(result);
            }
        }
        budget.nodes = budget.nodes.saturating_add(merge.used);
        if merge.exhausted {
            budget.exhausted = true;
        }
        let run = BudgetedRun {
            outcome: if merge.exhausted {
                Outcome::BudgetExhausted
            } else {
                Outcome::Complete
            },
            nodes: merge.used,
            best_partial: merge.best_partial,
        };
        (merge.out, run)
    }

    /// Runs the subtree rooted at `mapping[order[0]] = root` under a
    /// private meter of `node_cap` nodes, recording each solution with
    /// the local node count at its emission — the replay offset the
    /// merge compares against the shared budget.
    fn run_root(
        &self,
        order: &[NodeId],
        root: usize,
        node_cap: u64,
        deadline: Option<Instant>,
        solution_cap: Option<usize>,
    ) -> RootResult {
        use std::cell::Cell;
        let pn = self.pattern.node_count();
        let tn = self.target.node_count();
        let twpr = self.target.words_per_row().max(1);
        let mut unused = vec![u64::MAX; twpr];
        for (k, word) in unused.iter_mut().enumerate() {
            let lo = k * 64;
            if lo + 64 > tn {
                *word = if tn > lo { (1u64 << (tn - lo)) - 1 } else { 0 };
            }
        }
        unused[root / 64] &= !(1u64 << (root % 64));
        let mut distinct: Vec<usize> = order.iter().map(|&p| self.pattern.degree(p)).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let mut deg_masks = vec![0u64; distinct.len() * twpr];
        for (di, &d) in distinct.iter().enumerate() {
            let row = &mut deg_masks[di * twpr..(di + 1) * twpr];
            for w in 0..tn {
                if self.target.degree(NodeId::new(w)) >= d {
                    row[w / 64] |= 1u64 << (w % 64);
                }
            }
        }
        let deg_mask_of: Vec<u32> = order
            .iter()
            .map(|&p| {
                let pdeg = self.pattern.degree(p);
                distinct.iter().position(|&d| d == pdeg).unwrap_or(0) as u32
            })
            .collect();
        let nodes = Cell::new(0u64);
        let deadline_cut = Cell::new(false);
        let mut mapping = vec![INVALID; pn];
        mapping[order[0].index()] = root as u32;
        let small = twpr == 1 && self.target.words_per_row() == 1;
        let all = unused[0];
        let mut state = State {
            pattern: self.pattern,
            target: self.target,
            order: order.to_vec(),
            mapping,
            unused,
            deg_masks,
            deg_mask_of,
            cand_stack: vec![0; pn * twpr],
            twpr,
            image: vec![NodeId::new(0); pn],
            probe: CellMeter {
                nodes: &nodes,
                cap: node_cap,
                deadline,
                deadline_cut: &deadline_cut,
            },
            budget_cut: false,
            best_depth: 0,
            best_partial: Vec::new(),
        };
        // Record the root assignment itself as the depth-1 partial, as
        // the sequential kernel's depth-0 `note_depth` would have.
        state.note_depth(0);
        let mut solutions: Vec<(u64, Vec<NodeId>)> = Vec::new();
        let mut visit = |m: &[NodeId]| {
            solutions.push((nodes.get(), m.to_vec()));
            match solution_cap {
                Some(k) if solutions.len() >= k => ControlFlow::Break(()),
                _ => ControlFlow::Continue(()),
            }
        };
        if small {
            let _ = state.extend_small(1, all, &mut visit);
        } else {
            let _ = state.extend(1, &mut visit);
        }
        RootResult {
            nodes: nodes.get(),
            cut: state.budget_cut && !deadline_cut.get(),
            deadline_cut: deadline_cut.get(),
            solutions,
            best_depth: state.best_depth,
            best_partial: state.best_partial,
        }
    }

    fn search(&self, visit: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>) {
        let _ = self.run(Unlimited, visit);
    }

    fn run<P: Probe>(
        &self,
        probe: P,
        visit: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> RunInfo {
        let pn = self.pattern.node_count();
        let tn = self.target.node_count();
        if pn > tn {
            return RunInfo::complete();
        }
        if pn == 0 {
            // The empty map is the unique monomorphism.
            let _ = visit(&[]);
            return RunInfo::complete();
        }
        let order = self.variable_order();
        let twpr = self.target.words_per_row().max(1);
        // One bit per target node, all set; dead bits beyond the node
        // count stay zero so bit-walks never step outside the graph.
        let mut unused = vec![u64::MAX; twpr];
        for (k, word) in unused.iter_mut().enumerate() {
            let lo = k * 64;
            if lo + 64 > tn {
                *word = if tn > lo { (1u64 << (tn - lo)) - 1 } else { 0 };
            }
        }
        // The degree cut as a bitset: one mask per *distinct* pattern
        // degree holding the target nodes of at least that degree.
        // Folding the cut into the candidate mask removes a branch per
        // candidate from the innermost walk.
        let mut distinct: Vec<usize> = order.iter().map(|&p| self.pattern.degree(p)).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let mut deg_masks = vec![0u64; distinct.len() * twpr];
        for (di, &d) in distinct.iter().enumerate() {
            let row = &mut deg_masks[di * twpr..(di + 1) * twpr];
            for w in 0..tn {
                if self.target.degree(NodeId::new(w)) >= d {
                    row[w / 64] |= 1u64 << (w % 64);
                }
            }
        }
        let deg_mask_of: Vec<u32> = order
            .iter()
            .map(|&p| {
                let pdeg = self.pattern.degree(p);
                // `distinct` was built from exactly these degrees, so the
                // lookup cannot miss; falling back to mask 0 (the loosest
                // filter) keeps the search correct even if it did.
                distinct.iter().position(|&d| d == pdeg).unwrap_or(0) as u32
            })
            .collect();
        let small = twpr == 1 && self.target.words_per_row() == 1;
        let mut state = State {
            pattern: self.pattern,
            target: self.target,
            order,
            mapping: vec![INVALID; pn],
            unused,
            deg_masks,
            deg_mask_of,
            cand_stack: vec![0; pn * twpr],
            twpr,
            image: vec![NodeId::new(0); pn],
            probe,
            budget_cut: false,
            best_depth: 0,
            best_partial: Vec::new(),
        };
        if small {
            // Targets of at most 64 nodes (every library molecule and
            // most benchmark topologies) run the register-resident
            // single-word kernel; the unused set travels as an argument.
            let all = state.unused[0];
            let _ = state.extend_small(0, all, visit);
        } else {
            let _ = state.extend(0, visit);
        }
        RunInfo {
            budget_cut: state.budget_cut,
            best_partial: state.best_partial,
        }
    }

    /// Static variable order: repeatedly pick the unordered pattern node
    /// with the most already-ordered neighbours, breaking ties by higher
    /// degree then lower index. Keeps the partial pattern connected where
    /// possible, which makes the adjacency pruning bite early.
    fn variable_order(&self) -> Vec<NodeId> {
        let pn = self.pattern.node_count();
        let mut ordered = Vec::with_capacity(pn);
        let mut placed = vec![false; pn];
        let mut anchored = vec![0usize; pn]; // # ordered neighbours
        let degs: Vec<usize> = (0..pn)
            .map(|i| self.pattern.degree(NodeId::new(i)))
            .collect();
        for _ in 0..pn {
            // First (lowest-index) maximum of (anchored, degree): ties on
            // both keys fall to the lower index, exactly as the original
            // `max_by_key` with `Reverse(i)` did.
            let mut next = usize::MAX;
            for i in 0..pn {
                if placed[i] {
                    continue;
                }
                if next == usize::MAX || (anchored[i], degs[i]) > (anchored[next], degs[next]) {
                    next = i;
                }
            }
            placed[next] = true;
            ordered.push(NodeId::new(next));
            for u in self.pattern.neighbor_slice(NodeId::new(next)) {
                anchored[u.index()] += 1;
            }
        }
        ordered
    }
}

const INVALID: u32 = u32::MAX;

/// Options for [`MonomorphismFinder::collect_budgeted`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelOptions<'o> {
    /// Worker threads over the root candidate set; `0` and `1` both run
    /// sequentially in the calling thread. Clamped to the root count.
    pub jobs: usize,
    /// Target-node orbit ids (one per target node): when set, only the
    /// first root candidate of each orbit is explored. Callers must only
    /// pass orbits witnessed by actual automorphisms
    /// (`canonical::automorphisms`), and only when one representative
    /// per symmetry class is acceptable.
    pub root_orbits: Option<&'o [usize]>,
}

/// One root subtree's outcome, replay-merged against the shared budget.
struct RootResult {
    /// Nodes charged to the subtree's private meter.
    nodes: u64,
    /// Private node cap tripped (deadline trips recorded separately).
    cut: bool,
    /// Wall-clock deadline tripped inside this subtree.
    deadline_cut: bool,
    /// Solutions with the private node count at each emission — the
    /// offset the merge compares against the shared budget's remainder.
    solutions: Vec<(u64, Vec<NodeId>)>,
    best_depth: usize,
    best_partial: Vec<(NodeId, NodeId)>,
}

/// Deterministic replay merge: walks root results in root order and
/// mirrors, arithmetically, what the sequential search would have done
/// under the shared budget — which solutions it reaches, where it stops,
/// and how many nodes it charges.
struct Merge {
    /// Nodes the sequential search would have charged so far (includes
    /// the depth-0 entry visit).
    used: u64,
    /// Shared budget's allowance at entry.
    cap_left: u64,
    limit: Option<usize>,
    out: Vec<Vec<NodeId>>,
    best_depth: usize,
    best_partial: Vec<(NodeId, NodeId)>,
    exhausted: bool,
    done: bool,
}

impl Merge {
    fn absorb(&mut self, r: RootResult) {
        if self.done {
            return;
        }
        let remaining = self.cap_left - self.used;
        if r.best_depth > self.best_depth {
            self.best_depth = r.best_depth;
            self.best_partial = r.best_partial;
        }
        // Sequentially, this subtree would have run under `remaining`
        // nodes: a private cap trip, a deadline trip, or more nodes than
        // remain all mean the shared meter trips inside this subtree.
        let over = r.cut || r.deadline_cut || r.nodes > remaining;
        for (off, sol) in r.solutions {
            if off > remaining {
                break;
            }
            self.out.push(sol);
            if self.limit.is_some_and(|k| self.out.len() >= k) {
                // The sequential visitor breaks at this emission.
                self.used += off;
                self.done = true;
                return;
            }
        }
        if over {
            self.used += r.nodes.min(remaining);
            self.exhausted = true;
            self.done = true;
            return;
        }
        self.used += r.nodes;
    }
}

/// Contiguous-prefix bookkeeping for the parallel driver: once the done
/// prefix of root results already decides the merge (budget trip or
/// solution limit), remaining roots cannot affect the outcome and
/// workers stop claiming them.
struct PrefixProgress {
    next: usize,
    used: u64,
    accepted: usize,
    decided: bool,
}

/// A [`Probe`] over a thread-local [`Cell`](std::cell::Cell) counter,
/// with the same charge-then-poll-per-stride semantics as
/// [`Budget::visit`]. The cell is shared with the solution visitor so
/// emissions can record their node offset.
struct CellMeter<'c> {
    nodes: &'c std::cell::Cell<u64>,
    cap: u64,
    deadline: Option<Instant>,
    deadline_cut: &'c std::cell::Cell<bool>,
}

impl Probe for CellMeter<'_> {
    const TRACK_PARTIAL: bool = true;
    #[inline]
    fn visit(&mut self) -> bool {
        let n = self.nodes.get();
        if n >= self.cap {
            return false;
        }
        let n = n + 1;
        self.nodes.set(n);
        if n.is_multiple_of(DEADLINE_STRIDE) {
            if let Some(at) = self.deadline {
                if Instant::now() >= at {
                    self.deadline_cut.set(true);
                    return false;
                }
            }
        }
        true
    }
}

/// Internal report of one kernel run.
struct RunInfo {
    budget_cut: bool,
    best_partial: Vec<(NodeId, NodeId)>,
}

impl RunInfo {
    fn complete() -> Self {
        RunInfo {
            budget_cut: false,
            best_partial: Vec::new(),
        }
    }
}

/// The per-node budget hook of the search kernels. The unbudgeted probe
/// is a zero-sized no-op, so `for_each` and friends monomorphize to the
/// exact pre-budget kernels.
trait Probe {
    /// Whether the kernel should record best-partial assignments.
    const TRACK_PARTIAL: bool;
    /// Charges one search node; `false` aborts the search.
    fn visit(&mut self) -> bool;
}

struct Unlimited;

impl Probe for Unlimited {
    const TRACK_PARTIAL: bool = false;
    #[inline]
    fn visit(&mut self) -> bool {
        true
    }
}

impl Probe for &mut Budget {
    const TRACK_PARTIAL: bool = true;
    #[inline]
    fn visit(&mut self) -> bool {
        Budget::visit(self)
    }
}

struct State<'a, P> {
    pattern: &'a Graph,
    target: &'a Graph,
    order: Vec<NodeId>,
    /// `mapping[p]` = target index or `INVALID`.
    mapping: Vec<u32>,
    /// Bit `w` set iff target node `w` is not an image yet (`twpr` words,
    /// dead bits beyond the node count kept zero).
    unused: Vec<u64>,
    /// One mask per distinct pattern degree: the target nodes of at least
    /// that degree (`twpr` words each).
    deg_masks: Vec<u64>,
    /// Per-depth index into `deg_masks`.
    deg_mask_of: Vec<u32>,
    /// Per-depth candidate bitsets, `twpr` words each, carved out of one
    /// allocation: depth `d` owns `cand_stack[d * twpr..(d + 1) * twpr]`.
    cand_stack: Vec<u64>,
    /// Words per target adjacency-matrix row.
    twpr: usize,
    /// Scratch buffer for rendering complete mappings, reused across
    /// solutions so the search allocates nothing per node visited.
    image: Vec<NodeId>,
    /// Budget hook, charged once per visited search node.
    probe: P,
    /// Set when the probe aborted the search (distinguishes a budget cut
    /// from a visitor break).
    budget_cut: bool,
    /// Deepest partial assignment seen (budgeted runs only).
    best_depth: usize,
    best_partial: Vec<(NodeId, NodeId)>,
}

impl<P: Probe> State<'_, P> {
    /// Records the current prefix of the mapping as the best partial when
    /// it is the deepest seen. Compiled out for unbudgeted probes.
    #[inline]
    fn note_depth(&mut self, depth: usize) {
        if P::TRACK_PARTIAL && depth + 1 > self.best_depth {
            self.best_depth = depth + 1;
            self.best_partial.clear();
            for d in 0..=depth {
                let p = self.order[d];
                self.best_partial
                    .push((p, NodeId::new(self.mapping[p.index()] as usize)));
            }
        }
    }
    /// Single-word variant of [`extend`](State::extend) for targets of at
    /// most 64 nodes: the unused set and every candidate set live in
    /// registers (`u64` arguments and locals), adjacency rows are single
    /// loads, and the per-depth candidate stack is not touched. Candidate
    /// order and pruning semantics are identical to the general kernel.
    fn extend_small(
        &mut self,
        depth: usize,
        unused: u64,
        visit: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if !self.probe.visit() {
            self.budget_cut = true;
            return ControlFlow::Break(());
        }
        if depth == self.order.len() {
            for (slot, &t) in self.image.iter_mut().zip(&self.mapping) {
                *slot = NodeId::new(t as usize);
            }
            return visit(&self.image);
        }
        let p = self.order[depth];
        let mut unmapped_pnbrs = 0usize;
        let mut cand = unused & self.deg_masks[self.deg_mask_of[depth] as usize];
        for u in self.pattern.neighbor_slice(p) {
            let img = self.mapping[u.index()];
            if img == INVALID {
                unmapped_pnbrs += 1;
            } else {
                cand &= self.target.adjacency_word(img as usize);
            }
        }
        let mut word = cand;
        while word != 0 {
            let w = word.trailing_zeros() as usize;
            word &= word - 1;
            let row = self.target.adjacency_word(w);
            if ((row & unused).count_ones() as usize) < unmapped_pnbrs {
                continue;
            }
            self.mapping[p.index()] = w as u32;
            self.note_depth(depth);
            let flow = self.extend_small(depth + 1, unused & !(1u64 << w), visit);
            self.mapping[p.index()] = INVALID;
            flow?;
        }
        ControlFlow::Continue(())
    }

    /// Recursive candidate-pair extension, word-parallel.
    ///
    /// The candidate set for pattern node `p` is computed once per depth
    /// as a bitset intersection: the adjacency-matrix rows of every
    /// already-mapped neighbour's image ANDed together (adjacency
    /// consistency), masked by the unused set and by the precomputed
    /// degree mask — then walked lowest bit first, so targets are tried
    /// in increasing node index. One scalar cut runs per surviving
    /// candidate: the VF2 look-ahead comparing `p`'s unmapped pattern
    /// neighbours against `w`'s unused target neighbours (a popcount
    /// over `w`'s row). All cuts only remove branches that cannot
    /// complete, so the order in which *solutions* appear is identical
    /// to the unpruned search.
    fn extend(
        &mut self,
        depth: usize,
        visit: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if !self.probe.visit() {
            self.budget_cut = true;
            return ControlFlow::Break(());
        }
        if depth == self.order.len() {
            for (slot, &t) in self.image.iter_mut().zip(&self.mapping) {
                *slot = NodeId::new(t as usize);
            }
            return visit(&self.image);
        }
        let p = self.order[depth];
        let pnbrs = self.pattern.neighbor_slice(p);
        // The look-ahead bound: every still-unmapped pattern neighbour of
        // p must eventually land on a distinct unused target neighbour of
        // p's image. The mapped set is fixed throughout this depth.
        let mut unmapped_pnbrs = 0usize;

        // Candidate bitset:
        // unused ∩ degree-mask ∩ (⋂ rows of mapped neighbour images).
        let twpr = self.twpr;
        let base = depth * twpr;
        let dm = self.deg_mask_of[depth] as usize * twpr;
        for k in 0..twpr {
            self.cand_stack[base + k] = self.unused[k] & self.deg_masks[dm + k];
        }
        for u in pnbrs {
            let img = self.mapping[u.index()];
            if img == INVALID {
                unmapped_pnbrs += 1;
            } else {
                let row = self.target.adjacency_row(img as usize);
                for (slot, &r) in self.cand_stack[base..base + twpr].iter_mut().zip(row) {
                    *slot &= r;
                }
            }
        }

        for k in 0..twpr {
            // Snapshot the word: recursion below never touches this
            // depth's slice, and `unused` is restored after each descent,
            // so the candidate set is loop-invariant (matching the
            // collect-then-iterate semantics of the pre-CSR search).
            let mut word = self.cand_stack[base + k];
            while word != 0 {
                let w = k * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                // Look-ahead cut: w must keep enough unused neighbours
                // for p's unmapped pattern neighbours.
                if unmapped_pnbrs > 0 {
                    let row = self.target.adjacency_row(w);
                    let mut free = 0usize;
                    for (&r, &u) in row.iter().zip(&self.unused) {
                        free += (r & u).count_ones() as usize;
                        if free >= unmapped_pnbrs {
                            break;
                        }
                    }
                    if free < unmapped_pnbrs {
                        continue;
                    }
                }
                self.mapping[p.index()] = w as u32;
                self.note_depth(depth);
                self.unused[w / 64] &= !(1u64 << (w % 64));
                let flow = self.extend(depth + 1, visit);
                self.unused[w / 64] |= 1u64 << (w % 64);
                self.mapping[p.index()] = INVALID;
                flow?;
            }
        }
        ControlFlow::Continue(())
    }
}

/// Checks that `mapping` (pattern index → target node) is a valid
/// monomorphism: injective, in range, and edge-preserving.
pub fn is_monomorphism(pattern: &Graph, target: &Graph, mapping: &[NodeId]) -> bool {
    if mapping.len() != pattern.node_count() {
        return false;
    }
    let mut used = vec![false; target.node_count()];
    for &t in mapping {
        if t.index() >= target.node_count() || used[t.index()] {
            return false;
        }
        used[t.index()] = true;
    }
    pattern
        .edges()
        .all(|(a, b, _)| target.has_edge(mapping[a.index()], mapping[b.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn empty_pattern_has_one_map() {
        let p = Graph::new(0);
        let t = generate::chain(3);
        assert_eq!(MonomorphismFinder::new(&p, &t).count(), 1);
    }

    #[test]
    fn pattern_larger_than_target_has_none() {
        let p = generate::chain(4);
        let t = generate::chain(3);
        assert!(!MonomorphismFinder::new(&p, &t).exists());
    }

    #[test]
    fn chain3_into_c4() {
        let p = generate::chain(3);
        let t = generate::ring(4);
        let maps = MonomorphismFinder::new(&p, &t).find_all();
        assert_eq!(maps.len(), 8); // 4 middle choices * 2 orientations
        for m in &maps {
            assert!(is_monomorphism(&p, &t, m));
        }
    }

    #[test]
    fn triangle_into_k4() {
        let p = generate::complete(3);
        let t = generate::complete(4);
        assert_eq!(MonomorphismFinder::new(&p, &t).count(), 24);
    }

    #[test]
    fn triangle_into_tree_fails() {
        let p = generate::complete(3);
        let t = generate::star(6);
        assert!(!MonomorphismFinder::new(&p, &t).exists());
    }

    #[test]
    fn isolated_pattern_nodes_map_anywhere() {
        // Pattern: edge 0-1 plus isolated node 2; target: chain of 3.
        let p = Graph::from_edges(3, [(0, 1)]).unwrap();
        let t = generate::chain(3);
        let maps = MonomorphismFinder::new(&p, &t).find_all();
        // Edge 0-1 can map to (0,1),(1,0),(1,2),(2,1); isolated node takes
        // the single remaining vertex.
        assert_eq!(maps.len(), 4);
        for m in &maps {
            assert!(is_monomorphism(&p, &t, m));
        }
    }

    #[test]
    fn limit_caps_enumeration() {
        let p = generate::chain(2);
        let t = generate::complete(6);
        let all = MonomorphismFinder::new(&p, &t).count();
        assert_eq!(all, 30);
        assert_eq!(MonomorphismFinder::new(&p, &t).limit(7).count(), 7);
        assert_eq!(MonomorphismFinder::new(&p, &t).limit(7).find_all().len(), 7);
    }

    #[test]
    fn find_first_is_deterministic_and_valid() {
        let p = generate::chain(4);
        let t = generate::grid(3, 3);
        let a = MonomorphismFinder::new(&p, &t).find_first().unwrap();
        let b = MonomorphismFinder::new(&p, &t).find_first().unwrap();
        assert_eq!(a, b);
        assert!(is_monomorphism(&p, &t, &a));
    }

    #[test]
    fn monomorphism_not_induced() {
        // A path of 3 maps into a triangle even though the triangle has the
        // extra chord — monomorphism, not induced-subgraph isomorphism.
        let p = generate::chain(3);
        let t = generate::complete(3);
        assert_eq!(MonomorphismFinder::new(&p, &t).count(), 6);
    }

    #[test]
    fn self_map_exists() {
        for g in [generate::grid(3, 3), generate::ring(7), generate::star(5)] {
            let ids: Vec<NodeId> = g.nodes().collect();
            assert!(is_monomorphism(&g, &g, &ids));
            assert!(MonomorphismFinder::new(&g, &g).exists());
        }
    }

    #[test]
    fn validator_rejects_bad_maps() {
        let p = generate::chain(3);
        let t = generate::chain(3);
        // Non-injective.
        assert!(!is_monomorphism(
            &p,
            &t,
            &[NodeId::new(0), NodeId::new(0), NodeId::new(1)]
        ));
        // Wrong length.
        assert!(!is_monomorphism(&p, &t, &[NodeId::new(0)]));
        // Edge not preserved (0-1 pattern edge onto 0,2 non-edge).
        assert!(!is_monomorphism(
            &p,
            &t,
            &[NodeId::new(0), NodeId::new(2), NodeId::new(1)]
        ));
    }

    /// Brute-force enumeration for cross-checking.
    fn brute_force_count(p: &Graph, t: &Graph) -> usize {
        fn rec(
            p: &Graph,
            t: &Graph,
            map: &mut Vec<Option<NodeId>>,
            used: &mut Vec<bool>,
            i: usize,
        ) -> usize {
            if i == p.node_count() {
                return 1;
            }
            let mut total = 0;
            for w in t.nodes() {
                if used[w.index()] {
                    continue;
                }
                let ok = p.neighbors(NodeId::new(i)).all(|u| match map[u.index()] {
                    Some(img) => t.has_edge(img, w),
                    None => true,
                });
                if ok {
                    map[i] = Some(w);
                    used[w.index()] = true;
                    total += rec(p, t, map, used, i + 1);
                    used[w.index()] = false;
                    map[i] = None;
                }
            }
            total
        }
        let mut map = vec![None; p.node_count()];
        let mut used = vec![false; t.node_count()];
        rec(p, t, &mut map, &mut used, 0)
    }

    #[test]
    fn zero_budget_exhausts_without_visiting() {
        let p = generate::chain(3);
        let t = generate::ring(4);
        let mut budget = Budget::max_nodes(0);
        let mut seen = 0usize;
        let run = MonomorphismFinder::new(&p, &t).for_each_budgeted(&mut budget, &mut |_| {
            seen += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(run.outcome, Outcome::BudgetExhausted);
        assert_eq!(seen, 0);
        assert_eq!(run.nodes, 0);
        assert!(budget.is_exhausted());
        // The exhausted meter short-circuits follow-up searches too.
        assert_eq!(
            MonomorphismFinder::new(&p, &t).exists_budgeted(&mut budget),
            None
        );
    }

    #[test]
    fn budgeted_enumeration_is_a_prefix_of_the_unbudgeted_order() {
        let p = generate::chain(3);
        let t = generate::grid(3, 3);
        let all = MonomorphismFinder::new(&p, &t).find_all();
        assert!(all.len() > 4);
        for cap in [1u64, 3, 7, 20, 1_000_000] {
            let mut budget = Budget::max_nodes(cap);
            let mut got: Vec<Vec<NodeId>> = Vec::new();
            let run = MonomorphismFinder::new(&p, &t).for_each_budgeted(&mut budget, &mut |m| {
                got.push(m.to_vec());
                ControlFlow::Continue(())
            });
            assert_eq!(got, all[..got.len()], "cap {cap} reordered solutions");
            if run.outcome == Outcome::Complete {
                assert_eq!(got, all);
            }
        }
    }

    #[test]
    fn unlimited_budget_completes_and_counts_nodes() {
        let p = generate::ring(4);
        let t = generate::grid(3, 3);
        let mut budget = Budget::unlimited();
        let mut n = 0usize;
        let run = MonomorphismFinder::new(&p, &t).for_each_budgeted(&mut budget, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(run.outcome, Outcome::Complete);
        assert_eq!(n, MonomorphismFinder::new(&p, &t).count());
        assert!(run.nodes > 0);
        assert_eq!(budget.nodes_visited(), run.nodes);
        assert!(!budget.is_exhausted());
    }

    #[test]
    fn best_partial_is_a_valid_partial_monomorphism() {
        // Cut the search mid-flight and check the recorded partial:
        // injective, in range, and edge-preserving on the mapped prefix.
        let p = generate::ring(6);
        let t = generate::grid(4, 4);
        let mut budget = Budget::max_nodes(5);
        let run = MonomorphismFinder::new(&p, &t)
            .for_each_budgeted(&mut budget, &mut |_| ControlFlow::Continue(()));
        assert_eq!(run.outcome, Outcome::BudgetExhausted);
        assert!(!run.best_partial.is_empty());
        let mut used = std::collections::HashSet::new();
        for &(pv, tv) in &run.best_partial {
            assert!(pv.index() < p.node_count());
            assert!(tv.index() < t.node_count());
            assert!(used.insert(tv), "partial must be injective");
        }
        for &(a, ta) in &run.best_partial {
            for &(b, tb) in &run.best_partial {
                if p.has_edge(a, b) {
                    assert!(t.has_edge(ta, tb), "mapped pattern edge must be preserved");
                }
            }
        }
    }

    #[test]
    fn trivial_searches_respect_an_exhausted_meter() {
        let empty = Graph::new(0);
        let t = generate::chain(3);
        // Live zero-node budget: the empty map needs zero nodes, so the
        // search completes truthfully.
        let mut fresh = Budget::max_nodes(0);
        let mut seen = 0usize;
        let run = MonomorphismFinder::new(&empty, &t).for_each_budgeted(&mut fresh, &mut |_| {
            seen += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(run.outcome, Outcome::Complete);
        assert_eq!(seen, 1);
        // Already-exhausted meter: nothing is visited, even for the
        // trivial searches that skip the kernel.
        let mut dead = Budget::max_nodes(1);
        assert!(dead.consume(1));
        assert!(!dead.consume(1));
        for (p, tn) in [(Graph::new(0), 3usize), (generate::chain(4), 3)] {
            let target = generate::chain(tn);
            let mut visits = 0usize;
            let run =
                MonomorphismFinder::new(&p, &target).for_each_budgeted(&mut dead, &mut |_| {
                    visits += 1;
                    ControlFlow::Continue(())
                });
            assert_eq!(run.outcome, Outcome::BudgetExhausted);
            assert_eq!(visits, 0);
        }
    }

    #[test]
    fn exists_budgeted_settles_or_returns_unknown() {
        let tri = generate::complete(3);
        let star = generate::star(6);
        let chain = generate::chain(5);
        let ring = generate::ring(6);
        let mut budget = Budget::unlimited();
        assert_eq!(
            MonomorphismFinder::new(&tri, &star).exists_budgeted(&mut budget),
            Some(false)
        );
        assert_eq!(
            MonomorphismFinder::new(&chain, &ring).exists_budgeted(&mut budget),
            Some(true)
        );
        let mut tiny = Budget::max_nodes(1);
        assert_eq!(
            MonomorphismFinder::new(&tri, &star).exists_budgeted(&mut tiny),
            None
        );
    }

    #[test]
    fn consume_checkpoints_trip_the_meter() {
        let mut budget = Budget::max_nodes(3);
        assert!(budget.consume(1));
        assert!(budget.consume(2));
        assert!(!budget.consume(1), "cap reached");
        assert!(budget.is_exhausted());
        assert!(!budget.consume(0), "exhaustion is sticky");

        let mut past = Budget::deadline(Instant::now());
        assert!(!past.consume(0), "expired deadline trips on first poll");
    }

    #[test]
    fn collect_budgeted_matches_sequential_enumeration() {
        // Unlimited, no pruning: collect must equal find_all, and its
        // node accounting must equal for_each_budgeted's.
        let cases = [
            (generate::chain(3), generate::grid(3, 3)),
            (generate::ring(4), generate::grid(3, 3)),
            (generate::chain(5), generate::ring(6)),
            (generate::star(4), generate::complete(5)),
        ];
        for (p, t) in &cases {
            let finder = MonomorphismFinder::new(p, t);
            let all = finder.find_all();
            let mut seq_budget = Budget::unlimited();
            let seq = finder.for_each_budgeted(&mut seq_budget, &mut |_| ControlFlow::Continue(()));
            for jobs in [1usize, 2, 4, 8] {
                let mut budget = Budget::unlimited();
                let opts = ParallelOptions {
                    jobs,
                    root_orbits: None,
                };
                let (sols, run) = finder.collect_budgeted(&mut budget, &opts);
                assert_eq!(sols, all, "jobs {jobs} changed the solution set");
                assert_eq!(run.outcome, Outcome::Complete);
                assert_eq!(run.nodes, seq.nodes, "jobs {jobs} changed node accounting");
            }
        }
    }

    #[test]
    fn collect_budgeted_is_jobs_invariant_under_caps() {
        let p = generate::ring(4);
        let t = generate::grid(4, 4);
        let finder = MonomorphismFinder::new(&p, &t).limit(5);
        for cap in [0u64, 1, 3, 17, 100, 1_000, 1_000_000] {
            let mut reference: Option<(Vec<Vec<NodeId>>, Outcome, u64, u64)> = None;
            for jobs in [1usize, 2, 4, 8] {
                let mut budget = Budget::max_nodes(cap);
                let opts = ParallelOptions {
                    jobs,
                    root_orbits: None,
                };
                let (sols, run) = finder.collect_budgeted(&mut budget, &opts);
                let snapshot = (sols, run.outcome, run.nodes, budget.nodes_visited());
                match &reference {
                    None => reference = Some(snapshot),
                    Some(r) => assert_eq!(*r, snapshot, "cap {cap} jobs {jobs} diverged"),
                }
            }
        }
    }

    #[test]
    fn collect_budgeted_limit_matches_sequential_break() {
        // Capping at k must reproduce the sequential break: same prefix,
        // same node charge at the k-th emission.
        let p = generate::chain(3);
        let t = generate::grid(3, 3);
        for k in [1usize, 2, 5, 11] {
            let finder = MonomorphismFinder::new(&p, &t).limit(k);
            let all = MonomorphismFinder::new(&p, &t).find_all();
            let mut seq_budget = Budget::unlimited();
            let mut seen = 0usize;
            MonomorphismFinder::new(&p, &t).for_each_budgeted(&mut seq_budget, &mut |_| {
                seen += 1;
                if seen >= k {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
            for jobs in [1usize, 4] {
                let mut budget = Budget::unlimited();
                let opts = ParallelOptions {
                    jobs,
                    root_orbits: None,
                };
                let (sols, run) = finder.collect_budgeted(&mut budget, &opts);
                assert_eq!(sols, all[..k.min(all.len())]);
                assert_eq!(run.outcome, Outcome::Complete);
                assert_eq!(
                    budget.nodes_visited(),
                    seq_budget.nodes_visited(),
                    "k {k} jobs {jobs} stopped at a different point"
                );
            }
        }
    }

    #[test]
    fn orbit_pruned_roots_cover_every_orbit_witness() {
        use crate::canonical;
        // Chain of 2 into ring of 6: unpruned has 12 solutions (6 edges
        // × 2 orientations); the ring is vertex-transitive so orbit
        // pruning keeps a single root.
        let p = generate::chain(2);
        let t = generate::ring(6);
        let auto = canonical::automorphisms(&t);
        assert!(auto.complete);
        let finder = MonomorphismFinder::new(&p, &t);
        let mut budget = Budget::unlimited();
        let opts = ParallelOptions {
            jobs: 1,
            root_orbits: Some(&auto.orbits),
        };
        let (pruned, run) = finder.collect_budgeted(&mut budget, &opts);
        assert_eq!(run.outcome, Outcome::Complete);
        // One root (node 0), two orientations from it.
        assert_eq!(pruned.len(), 2);
        for m in &pruned {
            assert!(is_monomorphism(&p, &t, m));
        }
        // Every unpruned solution is an automorphic image of a pruned
        // one's root: existence is preserved.
        assert!(!pruned.is_empty());
        assert!(MonomorphismFinder::new(&p, &t).exists());
    }

    #[test]
    fn orbit_pruning_with_trivial_orbits_is_a_no_op() {
        use crate::canonical;
        // Distinct weights: every orbit is a singleton, pruning keeps
        // every root and the enumeration is unchanged.
        let p = generate::chain(2);
        let t = Graph::from_weighted_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]).unwrap();
        let auto = canonical::automorphisms(&t);
        let all = MonomorphismFinder::new(&p, &t).find_all();
        let mut budget = Budget::unlimited();
        let opts = ParallelOptions {
            jobs: 2,
            root_orbits: Some(&auto.orbits),
        };
        let (sols, _) = MonomorphismFinder::new(&p, &t).collect_budgeted(&mut budget, &opts);
        assert_eq!(sols, all);
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        let cases = [
            (generate::chain(3), generate::grid(2, 3)),
            (generate::ring(4), generate::grid(3, 3)),
            (generate::star(4), generate::complete(5)),
            (generate::chain(5), generate::ring(5)),
            (
                Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap(),
                generate::ring(5),
            ),
        ];
        for (p, t) in cases {
            assert_eq!(
                MonomorphismFinder::new(&p, &t).count(),
                brute_force_count(&p, &t),
                "pattern {p:?} target {t:?}"
            );
        }
    }
}
