//! Subgraph monomorphism search (VF2-style).
//!
//! The basic placement stage of §5.1 asks: can the *interaction graph* of a
//! workspace (two-qubit gates read so far) be aligned along the *fastest
//! interactions* of the physical environment? That is a subgraph
//! **monomorphism** question: an injective map `f` from pattern nodes to
//! target nodes such that every pattern edge maps to a target edge (target
//! edges without a pattern preimage are fine — unused couplings are simply
//! refocussed away).
//!
//! The paper's implementation delegated this to the VFLib C++ library
//! (reference 27 of the paper); this module is a from-scratch replacement
//! implementing the VF2
//! candidate-pair scheme with degree-based pruning and a deterministic
//! search order. Enumeration can be capped at `k` results, which the placer
//! uses with `k = 100` exactly as in §5.3.
//!
//! # Example
//!
//! ```
//! use qcp_graph::{Graph, vf2::MonomorphismFinder};
//!
//! // Triangle into K4: 4 * 3 * 2 = 24 monomorphisms.
//! let tri = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)])?;
//! let k4 = Graph::from_edges(4, [(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)])?;
//! assert_eq!(MonomorphismFinder::new(&tri, &k4).count(), 24);
//! # Ok::<(), qcp_graph::GraphError>(())
//! ```

use std::ops::ControlFlow;

use crate::{Graph, NodeId};

/// A subgraph-monomorphism search between a pattern and a target graph.
///
/// The search is deterministic: pattern nodes are processed in a
/// connectivity-aware static order, target candidates in increasing node
/// index. Construct with [`MonomorphismFinder::new`], optionally cap
/// enumeration with [`limit`](MonomorphismFinder::limit), then call
/// [`exists`](MonomorphismFinder::exists),
/// [`count`](MonomorphismFinder::count),
/// [`find_first`](MonomorphismFinder::find_first),
/// [`find_all`](MonomorphismFinder::find_all) or
/// [`for_each`](MonomorphismFinder::for_each).
#[derive(Debug)]
pub struct MonomorphismFinder<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    limit: Option<usize>,
}

impl<'a> MonomorphismFinder<'a> {
    /// Creates a finder for maps from `pattern` into `target`.
    pub fn new(pattern: &'a Graph, target: &'a Graph) -> Self {
        MonomorphismFinder {
            pattern,
            target,
            limit: None,
        }
    }

    /// Caps enumeration at `k` monomorphisms (the paper uses `k = 100`).
    #[must_use]
    pub fn limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// Returns `true` if at least one monomorphism exists.
    pub fn exists(&self) -> bool {
        let mut found = false;
        self.search(&mut |_| {
            found = true;
            ControlFlow::Break(())
        });
        found
    }

    /// Counts monomorphisms (up to the configured limit, if any).
    pub fn count(&self) -> usize {
        let mut n = 0usize;
        let cap = self.limit;
        self.search(&mut |_| {
            n += 1;
            match cap {
                Some(k) if n >= k => ControlFlow::Break(()),
                _ => ControlFlow::Continue(()),
            }
        });
        n
    }

    /// Returns the first monomorphism in search order, if any, as a map
    /// from pattern index to target node.
    pub fn find_first(&self) -> Option<Vec<NodeId>> {
        let mut out = None;
        self.search(&mut |m| {
            out = Some(m.to_vec());
            ControlFlow::Break(())
        });
        out
    }

    /// Collects monomorphisms (up to the configured limit, if any).
    pub fn find_all(&self) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        let cap = self.limit;
        self.search(&mut |m| {
            out.push(m.to_vec());
            match cap {
                Some(k) if out.len() >= k => ControlFlow::Break(()),
                _ => ControlFlow::Continue(()),
            }
        });
        out
    }

    /// Invokes `visit` for every monomorphism until it breaks or the search
    /// space is exhausted. The slice maps pattern index `i` to its image.
    ///
    /// The configured [`limit`](MonomorphismFinder::limit) is *not* applied
    /// here; breaking is the caller's responsibility.
    pub fn for_each(&self, visit: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>) {
        self.search(visit);
    }

    fn search(&self, visit: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>) {
        let pn = self.pattern.node_count();
        let tn = self.target.node_count();
        if pn > tn {
            return;
        }
        if pn == 0 {
            // The empty map is the unique monomorphism.
            let _ = visit(&[]);
            return;
        }
        let order = self.variable_order();
        let mut state = State {
            pattern: self.pattern,
            target: self.target,
            order,
            mapping: vec![INVALID; pn],
            used: vec![false; tn],
        };
        let _ = state.extend(0, visit);
    }

    /// Static variable order: repeatedly pick the unordered pattern node
    /// with the most already-ordered neighbours, breaking ties by higher
    /// degree then lower index. Keeps the partial pattern connected where
    /// possible, which makes the adjacency pruning bite early.
    fn variable_order(&self) -> Vec<NodeId> {
        let pn = self.pattern.node_count();
        let mut ordered = Vec::with_capacity(pn);
        let mut placed = vec![false; pn];
        let mut anchored = vec![0usize; pn]; // # ordered neighbours
        for _ in 0..pn {
            let next = (0..pn)
                .filter(|&i| !placed[i])
                .max_by_key(|&i| {
                    (
                        anchored[i],
                        self.pattern.degree(NodeId::new(i)),
                        std::cmp::Reverse(i),
                    )
                })
                .expect("an unplaced node exists");
            placed[next] = true;
            ordered.push(NodeId::new(next));
            for u in self.pattern.neighbors(NodeId::new(next)) {
                anchored[u.index()] += 1;
            }
        }
        ordered
    }
}

const INVALID: u32 = u32::MAX;

struct State<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    order: Vec<NodeId>,
    /// `mapping[p]` = target index or `INVALID`.
    mapping: Vec<u32>,
    used: Vec<bool>,
}

impl State<'_> {
    fn extend(
        &mut self,
        depth: usize,
        visit: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if depth == self.order.len() {
            let map: Vec<NodeId> = self
                .mapping
                .iter()
                .map(|&t| NodeId::new(t as usize))
                .collect();
            return visit(&map);
        }
        let p = self.order[depth];
        let pdeg = self.pattern.degree(p);

        // Candidate targets: if some neighbour of p is already mapped,
        // restrict to the neighbourhood of its image (smallest such set);
        // otherwise all unused target nodes.
        let mapped_neighbor = self
            .pattern
            .neighbors(p)
            .filter(|u| self.mapping[u.index()] != INVALID)
            .min_by_key(|u| {
                self.target
                    .degree(NodeId::new(self.mapping[u.index()] as usize))
            });

        let candidates: Vec<NodeId> = match mapped_neighbor {
            Some(u) => {
                let img = NodeId::new(self.mapping[u.index()] as usize);
                let mut c: Vec<NodeId> = self
                    .target
                    .neighbors(img)
                    .filter(|w| !self.used[w.index()])
                    .collect();
                c.sort_unstable();
                c
            }
            None => self
                .target
                .nodes()
                .filter(|w| !self.used[w.index()])
                .collect(),
        };

        for w in candidates {
            if self.target.degree(w) < pdeg {
                continue;
            }
            // Every mapped pattern neighbour of p must land on a target
            // neighbour of w.
            let consistent = self.pattern.neighbors(p).all(|u| {
                let img = self.mapping[u.index()];
                img == INVALID || self.target.has_edge(NodeId::new(img as usize), w)
            });
            if !consistent {
                continue;
            }
            self.mapping[p.index()] = w.index() as u32;
            self.used[w.index()] = true;
            let flow = self.extend(depth + 1, visit);
            self.used[w.index()] = false;
            self.mapping[p.index()] = INVALID;
            flow?;
        }
        ControlFlow::Continue(())
    }
}

/// Checks that `mapping` (pattern index → target node) is a valid
/// monomorphism: injective, in range, and edge-preserving.
pub fn is_monomorphism(pattern: &Graph, target: &Graph, mapping: &[NodeId]) -> bool {
    if mapping.len() != pattern.node_count() {
        return false;
    }
    let mut used = vec![false; target.node_count()];
    for &t in mapping {
        if t.index() >= target.node_count() || used[t.index()] {
            return false;
        }
        used[t.index()] = true;
    }
    pattern
        .edges()
        .all(|(a, b, _)| target.has_edge(mapping[a.index()], mapping[b.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn empty_pattern_has_one_map() {
        let p = Graph::new(0);
        let t = generate::chain(3);
        assert_eq!(MonomorphismFinder::new(&p, &t).count(), 1);
    }

    #[test]
    fn pattern_larger_than_target_has_none() {
        let p = generate::chain(4);
        let t = generate::chain(3);
        assert!(!MonomorphismFinder::new(&p, &t).exists());
    }

    #[test]
    fn chain3_into_c4() {
        let p = generate::chain(3);
        let t = generate::ring(4);
        let maps = MonomorphismFinder::new(&p, &t).find_all();
        assert_eq!(maps.len(), 8); // 4 middle choices * 2 orientations
        for m in &maps {
            assert!(is_monomorphism(&p, &t, m));
        }
    }

    #[test]
    fn triangle_into_k4() {
        let p = generate::complete(3);
        let t = generate::complete(4);
        assert_eq!(MonomorphismFinder::new(&p, &t).count(), 24);
    }

    #[test]
    fn triangle_into_tree_fails() {
        let p = generate::complete(3);
        let t = generate::star(6);
        assert!(!MonomorphismFinder::new(&p, &t).exists());
    }

    #[test]
    fn isolated_pattern_nodes_map_anywhere() {
        // Pattern: edge 0-1 plus isolated node 2; target: chain of 3.
        let p = Graph::from_edges(3, [(0, 1)]).unwrap();
        let t = generate::chain(3);
        let maps = MonomorphismFinder::new(&p, &t).find_all();
        // Edge 0-1 can map to (0,1),(1,0),(1,2),(2,1); isolated node takes
        // the single remaining vertex.
        assert_eq!(maps.len(), 4);
        for m in &maps {
            assert!(is_monomorphism(&p, &t, m));
        }
    }

    #[test]
    fn limit_caps_enumeration() {
        let p = generate::chain(2);
        let t = generate::complete(6);
        let all = MonomorphismFinder::new(&p, &t).count();
        assert_eq!(all, 30);
        assert_eq!(MonomorphismFinder::new(&p, &t).limit(7).count(), 7);
        assert_eq!(MonomorphismFinder::new(&p, &t).limit(7).find_all().len(), 7);
    }

    #[test]
    fn find_first_is_deterministic_and_valid() {
        let p = generate::chain(4);
        let t = generate::grid(3, 3);
        let a = MonomorphismFinder::new(&p, &t).find_first().unwrap();
        let b = MonomorphismFinder::new(&p, &t).find_first().unwrap();
        assert_eq!(a, b);
        assert!(is_monomorphism(&p, &t, &a));
    }

    #[test]
    fn monomorphism_not_induced() {
        // A path of 3 maps into a triangle even though the triangle has the
        // extra chord — monomorphism, not induced-subgraph isomorphism.
        let p = generate::chain(3);
        let t = generate::complete(3);
        assert_eq!(MonomorphismFinder::new(&p, &t).count(), 6);
    }

    #[test]
    fn self_map_exists() {
        for g in [generate::grid(3, 3), generate::ring(7), generate::star(5)] {
            let ids: Vec<NodeId> = g.nodes().collect();
            assert!(is_monomorphism(&g, &g, &ids));
            assert!(MonomorphismFinder::new(&g, &g).exists());
        }
    }

    #[test]
    fn validator_rejects_bad_maps() {
        let p = generate::chain(3);
        let t = generate::chain(3);
        // Non-injective.
        assert!(!is_monomorphism(
            &p,
            &t,
            &[NodeId::new(0), NodeId::new(0), NodeId::new(1)]
        ));
        // Wrong length.
        assert!(!is_monomorphism(&p, &t, &[NodeId::new(0)]));
        // Edge not preserved (0-1 pattern edge onto 0,2 non-edge).
        assert!(!is_monomorphism(
            &p,
            &t,
            &[NodeId::new(0), NodeId::new(2), NodeId::new(1)]
        ));
    }

    /// Brute-force enumeration for cross-checking.
    fn brute_force_count(p: &Graph, t: &Graph) -> usize {
        fn rec(
            p: &Graph,
            t: &Graph,
            map: &mut Vec<Option<NodeId>>,
            used: &mut Vec<bool>,
            i: usize,
        ) -> usize {
            if i == p.node_count() {
                return 1;
            }
            let mut total = 0;
            for w in t.nodes() {
                if used[w.index()] {
                    continue;
                }
                let ok = p.neighbors(NodeId::new(i)).all(|u| match map[u.index()] {
                    Some(img) => t.has_edge(img, w),
                    None => true,
                });
                if ok {
                    map[i] = Some(w);
                    used[w.index()] = true;
                    total += rec(p, t, map, used, i + 1);
                    used[w.index()] = false;
                    map[i] = None;
                }
            }
            total
        }
        let mut map = vec![None; p.node_count()];
        let mut used = vec![false; t.node_count()];
        rec(p, t, &mut map, &mut used, 0)
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        let cases = [
            (generate::chain(3), generate::grid(2, 3)),
            (generate::ring(4), generate::grid(3, 3)),
            (generate::star(4), generate::complete(5)),
            (generate::chain(5), generate::ring(5)),
            (
                Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap(),
                generate::ring(5),
            ),
        ];
        for (p, t) in cases {
            assert_eq!(
                MonomorphismFinder::new(&p, &t).count(),
                brute_force_count(&p, &t),
                "pattern {p:?} target {t:?}"
            );
        }
    }
}
