//! Graph generators for tests, benchmarks, and synthetic environments.

// Every generator assembles an edge list that is simple and in-range by
// construction, so the `Graph` constructors cannot fail; the `expect`s
// below document those invariants (scoped allow per the workspace
// unwrap/expect policy).
#![allow(clippy::expect_used)]

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, NodeId};

/// A path (chain) graph `0 - 1 - … - (n-1)`.
///
/// This is the paper's *linear nearest neighbour* architecture.
pub fn chain(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (i - 1, i))).expect("chain edges are valid")
}

/// A cycle graph on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3` (smaller cycles are not simple graphs).
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes, got {n}");
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).expect("ring edges are valid")
}

/// A star graph: node 0 joined to nodes `1..n`.
pub fn star(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (0, i))).expect("star edges are valid")
}

/// The complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    Graph::from_edges(n, (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j))))
        .expect("complete graph edges are valid")
}

/// An `rows × cols` grid (2D lattice) graph, row-major node numbering.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                edges.push((v, v + 1));
            }
            if r + 1 < rows {
                edges.push((v, v + cols));
            }
        }
    }
    Graph::from_edges(rows * cols, edges).expect("grid edges are valid")
}

/// The heavy-hex lattice of IBM-style superconducting devices: `d` rows
/// of `2d - 1` qubits joined into chains, with vertical *connector*
/// qubits between adjacent rows at alternating columns (columns `≡ 0
/// (mod 4)` below even rows, `≡ 2 (mod 4)` below odd rows). Every cycle
/// is a subdivided hexagon and no node exceeds degree 3 — the "heavy"
/// property that motivates the lattice.
///
/// For odd `d ≥ 3` the graph has exactly `d(5d - 3)/2` nodes and
/// `3d(d - 1)` edges. Row qubit `(r, c)` is node `r·(2d - 1) + c`;
/// connectors are numbered after all row qubits in `(row gap, column)`
/// order.
///
/// # Panics
///
/// Panics if `d` is even or smaller than 3.
pub fn heavy_hex(d: usize) -> Graph {
    assert!(
        d >= 3 && d % 2 == 1,
        "heavy-hex distance must be odd and at least 3, got {d}"
    );
    let cols = 2 * d - 1;
    let row_qubits = d * cols;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Horizontal chains.
    for r in 0..d {
        for c in 1..cols {
            edges.push((r * cols + c - 1, r * cols + c));
        }
    }
    // Vertical connectors, alternating column phase per row gap.
    let mut connector = row_qubits;
    for gap in 0..d - 1 {
        let phase = 2 * (gap % 2);
        for c in (phase..cols).step_by(4) {
            edges.push((gap * cols + c, connector));
            edges.push((connector, (gap + 1) * cols + c));
            connector += 1;
        }
    }
    Graph::from_edges(connector, edges).expect("heavy-hex edges are valid")
}

/// A caterpillar tree: a spine chain of `spine` nodes, each carrying `legs`
/// pendant leaves. Models the bond graphs of linear molecules such as
/// trans-crotonic acid.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut edges: Vec<(usize, usize)> = (1..spine).map(|i| (i - 1, i)).collect();
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            edges.push((s, next));
            next += 1;
        }
    }
    Graph::from_edges(n, edges).expect("caterpillar edges are valid")
}

/// A uniformly random labelled tree on `n` nodes (Prüfer-like attachment:
/// each node `i ≥ 1` picks a random earlier parent).
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        let p = rng.gen_range(0..i);
        g.add_edge(NodeId::new(p), NodeId::new(i), 1.0)
            .expect("tree edge is fresh");
    }
    g
}

/// A random tree whose maximum degree never exceeds `max_degree ≥ 2`.
///
/// Bounded-degree graphs are the paper's model of physically realizable
/// architectures (Appendix, Theorem 1).
///
/// # Panics
///
/// Panics if `max_degree < 2` and `n > 2`.
pub fn bounded_degree_tree(n: usize, max_degree: usize, rng: &mut impl Rng) -> Graph {
    if n > 2 {
        assert!(
            max_degree >= 2,
            "max_degree must be at least 2, got {max_degree}"
        );
    }
    let mut g = Graph::new(n);
    let mut degree = vec![0usize; n];
    let mut open: Vec<usize> = if n > 0 { vec![0] } else { vec![] };
    for i in 1..n {
        let slot = rng.gen_range(0..open.len());
        let p = open[slot];
        g.add_edge(NodeId::new(p), NodeId::new(i), 1.0)
            .expect("tree edge is fresh");
        degree[p] += 1;
        degree[i] += 1;
        if degree[p] >= max_degree {
            open.swap_remove(slot);
        }
        if degree[i] < max_degree {
            open.push(i);
        }
    }
    g
}

/// A connected random graph: a random tree plus `extra_edges` additional
/// uniformly random non-parallel edges (fewer if the graph saturates).
pub fn random_connected(n: usize, extra_edges: usize, rng: &mut impl Rng) -> Graph {
    let mut g = random_tree(n, rng);
    let max_extra = n * (n - 1) / 2 - g.edge_count();
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_edges.min(max_extra) && attempts < 50 * (extra_edges + 1) {
        attempts += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !g.has_edge(NodeId::new(a), NodeId::new(b)) {
            g.add_edge(NodeId::new(a), NodeId::new(b), 1.0)
                .expect("checked fresh");
            added += 1;
        }
    }
    g
}

/// An Erdős–Rényi `G(n, p)` random graph (possibly disconnected).
pub fn gnp(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(NodeId::new(i), NodeId::new(j), 1.0)
                    .expect("fresh edge");
            }
        }
    }
    g
}

/// A uniformly random permutation of `0..n`, returned as the image array
/// (`perm[i]` is where `i` maps). Convenience for router tests/benches.
pub fn random_permutation(n: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    p.shuffle(rng);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_shape() {
        let g = chain(4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        assert!(is_connected(&g));
        assert_eq!(chain(1).edge_count(), 0);
        assert_eq!(chain(0).node_count(), 0);
    }

    #[test]
    fn ring_shape() {
        let g = ring(5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn tiny_ring_panics() {
        let _ = ring(2);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(NodeId::new(0)), 5);
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(is_connected(&g));
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn heavy_hex_shape() {
        for d in [3usize, 5, 7] {
            let g = heavy_hex(d);
            assert_eq!(g.node_count(), d * (5 * d - 3) / 2, "nodes at d={d}");
            assert_eq!(g.edge_count(), 3 * d * (d - 1), "edges at d={d}");
            assert!(is_connected(&g), "connected at d={d}");
            assert!(g.max_degree() <= 3, "heavy property at d={d}");
        }
    }

    #[test]
    #[should_panic(expected = "odd and at least 3")]
    fn heavy_hex_rejects_even_distance() {
        let _ = heavy_hex(4);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 11); // a tree
        assert!(is_connected(&g));
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 33] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn bounded_degree_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        for k in 2..=5 {
            let g = bounded_degree_tree(40, k, &mut rng);
            assert!(is_connected(&g));
            assert!(g.max_degree() <= k, "degree {} > {k}", g.max_degree());
        }
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_connected(20, 15, &mut rng);
        assert!(is_connected(&g));
        assert!(g.edge_count() >= 19);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(gnp(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn permutation_is_bijection() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = random_permutation(10, &mut rng);
        let mut seen = [false; 10];
        for &x in &p {
            assert!(!seen[x]);
            seen[x] = true;
        }
    }
}
