//! Simple undirected weighted graphs.

use std::collections::HashSet;
use std::fmt;

use crate::{GraphError, NodeId, Result};

/// A half-edge stored in a node's adjacency list.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge {
    /// The neighbouring node.
    pub to: NodeId,
    /// Weight of the edge (interaction delay, coupling cost, …).
    pub weight: f64,
}

/// A simple undirected graph with `f64` edge weights.
///
/// `Graph` is the common currency of the placement pipeline: the
/// *fast-interaction graph* of a physical environment, the *interaction
/// graph* of a circuit workspace, and the *adjacency graph* handed to the
/// SWAP router are all values of this type.
///
/// Self-loops and parallel edges are rejected; node identity is positional
/// ([`NodeId`] indexes a dense array).
///
/// # Example
///
/// ```
/// use qcp_graph::{Graph, NodeId};
///
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), 38.0)?;
/// g.add_edge(NodeId::new(1), NodeId::new(2), 89.0)?;
/// assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
/// assert_eq!(g.weight(NodeId::new(1), NodeId::new(2)), Some(89.0));
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// # Ok::<(), qcp_graph::GraphError>(())
/// ```
#[derive(Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    adj: Vec<Vec<Edge>>,
    edge_set: HashSet<(u32, u32)>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_set: HashSet::new(),
        }
    }

    /// Creates a graph with `n` nodes and unit-weight edges.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, an edge repeats, or
    /// an edge is a self-loop.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Result<Self> {
        let mut g = Graph::new(n);
        for (a, b) in edges {
            g.add_edge(NodeId::new(a), NodeId::new(b), 1.0)?;
        }
        Ok(g)
    }

    /// Creates a graph with `n` nodes and explicitly weighted edges.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::from_edges`], plus invalid (NaN or
    /// negative) weights.
    pub fn from_weighted_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self> {
        let mut g = Graph::new(n);
        for (a, b, w) in edges {
            g.add_edge(NodeId::new(a), NodeId::new(b), w)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_set.len()
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterates over all node identifiers in index order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.adj.len()).map(NodeId::new)
    }

    /// Appends a fresh isolated node and returns its identifier.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId::new(self.adj.len() - 1)
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if v.index() >= self.adj.len() {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: self.adj.len(),
            });
        }
        Ok(())
    }

    /// Adds the undirected edge `(a, b)` with the given weight.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if an endpoint does not exist;
    /// * [`GraphError::SelfLoop`] if `a == b`;
    /// * [`GraphError::DuplicateEdge`] if the edge is already present;
    /// * [`GraphError::InvalidWeight`] if `weight` is NaN or negative.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: f64) -> Result<()> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if weight.is_nan() || weight < 0.0 {
            return Err(GraphError::InvalidWeight { a, b, weight });
        }
        let key = Self::key(a, b);
        if !self.edge_set.insert(key) {
            return Err(GraphError::DuplicateEdge(a, b));
        }
        self.adj[a.index()].push(Edge { to: b, weight });
        self.adj[b.index()].push(Edge { to: a, weight });
        Ok(())
    }

    #[inline]
    fn key(a: NodeId, b: NodeId) -> (u32, u32) {
        let (x, y) = (a.index() as u32, b.index() as u32);
        if x <= y {
            (x, y)
        } else {
            (y, x)
        }
    }

    /// Returns `true` if the undirected edge `(a, b)` exists.
    ///
    /// Out-of-range endpoints simply yield `false`.
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.edge_set.contains(&Self::key(a, b))
    }

    /// Returns the weight of edge `(a, b)`, or `None` if absent.
    pub fn weight(&self, a: NodeId, b: NodeId) -> Option<f64> {
        if !self.has_edge(a, b) {
            return None;
        }
        self.adj[a.index()]
            .iter()
            .find(|e| e.to == b)
            .map(|e| e.weight)
    }

    /// Iterates over the neighbours of `v` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.adj[v.index()].iter().map(|e| e.to)
    }

    /// Iterates over the incident half-edges of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn incident(&self, v: NodeId) -> impl ExactSizeIterator<Item = &Edge> + '_ {
        self.adj[v.index()].iter()
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Maximum degree over all nodes, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over all edges as `(a, b, weight)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(i, edges)| {
            edges
                .iter()
                .filter(move |e| i < e.to.index())
                .map(move |e| (NodeId::new(i), e.to, e.weight))
        })
    }

    /// Builds the subgraph induced by `nodes`.
    ///
    /// Returns the induced graph together with the mapping from new node
    /// indices to the original identifiers: node `i` of the result
    /// corresponds to `nodes[i]`. Duplicate entries in `nodes` are
    /// rejected.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for unknown nodes.
    ///
    /// # Panics
    ///
    /// Debug builds panic on duplicate entries in `nodes`; release builds
    /// keep the first occurrence.
    pub fn induced(&self, nodes: &[NodeId]) -> Result<(Graph, Vec<NodeId>)> {
        let mut pos = vec![usize::MAX; self.node_count()];
        for (i, &v) in nodes.iter().enumerate() {
            self.check_node(v)?;
            debug_assert!(
                pos[v.index()] == usize::MAX,
                "duplicate node {v} in induced()"
            );
            pos[v.index()] = i;
        }
        let mut g = Graph::new(nodes.len());
        for (i, &v) in nodes.iter().enumerate() {
            for e in &self.adj[v.index()] {
                let j = pos[e.to.index()];
                if j != usize::MAX && i < j {
                    g.add_edge(NodeId::new(i), NodeId::new(j), e.weight)?;
                }
            }
        }
        Ok((g, nodes.to_vec()))
    }

    /// Returns a copy of the graph keeping only edges accepted by `keep`.
    pub fn filter_edges(&self, mut keep: impl FnMut(NodeId, NodeId, f64) -> bool) -> Graph {
        let mut g = Graph::new(self.node_count());
        for (a, b, w) in self.edges() {
            if keep(a, b, w) {
                g.add_edge(a, b, w).expect("filtered edge must be valid");
            }
        }
        g
    }

    /// Sorts every adjacency list by node index, making iteration order
    /// deterministic regardless of edge insertion order.
    pub fn sort_adjacency(&mut self) {
        for list in &mut self.adj {
            list.sort_by_key(|e| e.to);
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}; ",
            self.node_count(),
            self.edge_count()
        )?;
        let mut first = true;
        for (a, b, w) in self.edges() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if (w - 1.0).abs() < f64::EPSILON {
                write!(f, "{a}-{b}")?;
            } else {
                write!(f, "{a}-{b}:{w}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn build_and_query() {
        let g = Graph::from_weighted_edges(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)]).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(n(0), n(1)));
        assert!(g.has_edge(n(1), n(0)));
        assert!(!g.has_edge(n(0), n(2)));
        assert!(!g.has_edge(n(0), n(0)));
        assert_eq!(g.weight(n(2), n(1)), Some(3.0));
        assert_eq!(g.weight(n(0), n(3)), None);
        assert_eq!(g.degree(n(1)), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(n(1), n(1), 1.0), Err(GraphError::SelfLoop(n(1))));
    }

    #[test]
    fn rejects_duplicate_even_reversed() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1), 1.0).unwrap();
        assert_eq!(
            g.add_edge(n(1), n(0), 5.0),
            Err(GraphError::DuplicateEdge(n(1), n(0)))
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(n(0), n(5), 1.0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_bad_weight() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(n(0), n(1), f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(n(0), n(1), -1.0),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (2, 3)]).unwrap();
        let mut es: Vec<_> = g.edges().map(|(a, b, _)| (a.index(), b.index())).collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (0, 3), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_remaps_edges() {
        let g = Graph::from_weighted_edges(5, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0)])
            .unwrap();
        let (sub, back) = g.induced(&[n(1), n(2), n(3)]).unwrap();
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(sub.weight(n(0), n(1)), Some(2.0));
        assert_eq!(sub.weight(n(1), n(2)), Some(3.0));
        assert_eq!(back, vec![n(1), n(2), n(3)]);
    }

    #[test]
    fn filter_edges_keeps_weights() {
        let g = Graph::from_weighted_edges(3, [(0, 1, 10.0), (1, 2, 100.0)]).unwrap();
        let fast = g.filter_edges(|_, _, w| w < 50.0);
        assert_eq!(fast.edge_count(), 1);
        assert_eq!(fast.weight(n(0), n(1)), Some(10.0));
        assert_eq!(fast.node_count(), 3);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = Graph::new(1);
        let v = g.add_node();
        assert_eq!(v.index(), 1);
        g.add_edge(n(0), v, 1.0).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn debug_output_mentions_edges() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let dbg = format!("{g:?}");
        assert!(dbg.contains("v0-v1"), "{dbg}");
    }
}
