//! Simple undirected weighted graphs on a CSR + bitset core.

use std::fmt;

use crate::{GraphError, NodeId, Result};

/// A half-edge incident to a node.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge {
    /// The neighbouring node.
    pub to: NodeId,
    /// Weight of the edge (interaction delay, coupling cost, …).
    pub weight: f64,
}

/// A simple undirected graph with `f64` edge weights.
///
/// `Graph` is the common currency of the placement pipeline: the
/// *fast-interaction graph* of a physical environment, the *interaction
/// graph* of a circuit workspace, and the *adjacency graph* handed to the
/// SWAP router are all values of this type.
///
/// Self-loops and parallel edges are rejected; node identity is positional
/// ([`NodeId`] indexes a dense array).
///
/// # Memory layout
///
/// Internally the graph keeps two synchronized views, sized for the hot
/// paths of the VF2 monomorphism search (the paper's stated bottleneck,
/// §5.3):
///
/// * a **CSR adjacency** — one contiguous neighbour array plus per-node
///   offsets, with each node's neighbours kept **sorted by index** and a
///   parallel weight array; and
/// * a **packed bitset adjacency matrix** — one `u64`-word row per node —
///   making [`has_edge`](Graph::has_edge) a branch-free O(1) bit test and
///   [`weight`](Graph::weight) an O(log degree) binary search.
///
/// Because rows are always index-sorted, [`neighbors`](Graph::neighbors),
/// [`incident`](Graph::incident), and [`edges`](Graph::edges) enumerate in
/// increasing node order regardless of edge insertion order; every
/// traversal built on them (BFS orders, spanning trees, VF2 candidate
/// enumeration) is deterministic by construction.
///
/// # Example
///
/// ```
/// use qcp_graph::{Graph, NodeId};
///
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), 38.0)?;
/// g.add_edge(NodeId::new(1), NodeId::new(2), 89.0)?;
/// assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
/// assert_eq!(g.weight(NodeId::new(1), NodeId::new(2)), Some(89.0));
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// # Ok::<(), qcp_graph::GraphError>(())
/// ```
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    /// CSR row boundaries: node `v`'s neighbours occupy
    /// `nbrs[offsets[v] as usize..offsets[v + 1] as usize]`.
    offsets: Vec<u32>,
    /// Neighbour indices, ascending within each row.
    nbrs: Vec<NodeId>,
    /// Edge weights, parallel to `nbrs`.
    wgts: Vec<f64>,
    /// Packed adjacency matrix, `words_per_row` `u64` words per node.
    bits: Vec<u64>,
    words_per_row: usize,
    edge_count: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new(0)
    }
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        Graph {
            offsets: vec![0; n + 1],
            nbrs: Vec::new(),
            wgts: Vec::new(),
            bits: vec![0; n * words_per_row],
            words_per_row,
            edge_count: 0,
        }
    }

    /// Creates a graph with `n` nodes and unit-weight edges.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, an edge repeats, or
    /// an edge is a self-loop.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Result<Self> {
        Graph::build(n, edges.into_iter().map(|(a, b)| (a, b, 1.0)))
    }

    /// Creates a graph with `n` nodes and explicitly weighted edges.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::from_edges`], plus invalid (NaN or
    /// negative) weights.
    pub fn from_weighted_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self> {
        Graph::build(n, edges)
    }

    /// Bulk constructor: validates every edge, then lays out the CSR
    /// arrays in one pass (count, sort half-edges, fill) instead of
    /// repeated sorted insertion. All batch construction paths
    /// ([`from_edges`](Graph::from_edges), [`induced`](Graph::induced),
    /// [`filter_edges`](Graph::filter_edges)) funnel through here;
    /// [`add_edge`](Graph::add_edge) stays available for incremental
    /// mutation.
    fn build(n: usize, edges: impl IntoIterator<Item = (usize, usize, f64)>) -> Result<Self> {
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        let mut halves: Vec<(u32, u32, f64)> = Vec::new();
        let mut edge_count = 0usize;
        for (a, b, w) in edges {
            let (na, nb) = (NodeId::new(a), NodeId::new(b));
            if a >= n || b >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: if a >= n { na } else { nb },
                    node_count: n,
                });
            }
            if a == b {
                return Err(GraphError::SelfLoop(na));
            }
            if w.is_nan() || w < 0.0 {
                return Err(GraphError::InvalidWeight {
                    a: na,
                    b: nb,
                    weight: w,
                });
            }
            if (bits[a * words_per_row + b / 64] >> (b % 64)) & 1 != 0 {
                return Err(GraphError::DuplicateEdge(na, nb));
            }
            bits[a * words_per_row + b / 64] |= 1u64 << (b % 64);
            bits[b * words_per_row + a / 64] |= 1u64 << (a % 64);
            halves.push((a as u32, b as u32, w));
            halves.push((b as u32, a as u32, w));
            edge_count += 1;
        }
        halves.sort_unstable_by_key(|&(src, dst, _)| (src, dst));
        let mut offsets = vec![0u32; n + 1];
        for &(src, _, _) in &halves {
            offsets[src as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut nbrs = Vec::with_capacity(halves.len());
        let mut wgts = Vec::with_capacity(halves.len());
        for &(_, dst, w) in &halves {
            nbrs.push(NodeId::new(dst as usize));
            wgts.push(w);
        }
        Ok(Graph {
            offsets,
            nbrs,
            wgts,
            bits,
            words_per_row,
            edge_count,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Iterates over all node identifiers in index order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Appends a fresh isolated node and returns its identifier.
    pub fn add_node(&mut self) -> NodeId {
        // `offsets` always holds node_count + 1 entries (at least the
        // leading 0), so an empty read can only mean internal corruption.
        let last = self.offsets.last().copied().unwrap_or(0);
        self.offsets.push(last);
        let n = self.node_count();
        if n > self.words_per_row * 64 {
            // Re-layout the bit matrix with wider rows; doubling amortizes
            // repeated single-node growth.
            let new_wpr = n.div_ceil(64).max(self.words_per_row * 2);
            let mut bits = vec![0u64; n * new_wpr];
            for v in 0..n - 1 {
                bits[v * new_wpr..v * new_wpr + self.words_per_row].copy_from_slice(
                    &self.bits[v * self.words_per_row..(v + 1) * self.words_per_row],
                );
            }
            self.bits = bits;
            self.words_per_row = new_wpr;
        } else {
            self.bits.extend(std::iter::repeat_n(0, self.words_per_row));
        }
        NodeId::new(n - 1)
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if v.index() >= self.node_count() {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: self.node_count(),
            });
        }
        Ok(())
    }

    #[inline]
    fn bit(&self, a: usize, b: usize) -> bool {
        (self.bits[a * self.words_per_row + b / 64] >> (b % 64)) & 1 != 0
    }

    #[inline]
    fn set_bit(&mut self, a: usize, b: usize) {
        self.bits[a * self.words_per_row + b / 64] |= 1u64 << (b % 64);
    }

    #[inline]
    fn row_range(&self, v: usize) -> std::ops::Range<usize> {
        self.offsets[v] as usize..self.offsets[v + 1] as usize
    }

    /// Number of `u64` words per adjacency-matrix row.
    #[inline]
    pub(crate) fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Node `v`'s adjacency-matrix row as packed `u64` words (bit `b` of
    /// word `k` set iff the edge `(v, 64k + b)` exists). The VF2 search
    /// intersects these rows word-parallel to enumerate candidates.
    #[inline]
    pub(crate) fn adjacency_row(&self, v: usize) -> &[u64] {
        &self.bits[v * self.words_per_row..(v + 1) * self.words_per_row]
    }

    /// Node `v`'s adjacency-matrix row as a single word. Only valid for
    /// graphs of at most 64 nodes (one word per row) — the VF2 fast path.
    #[inline]
    pub(crate) fn adjacency_word(&self, v: usize) -> u64 {
        debug_assert_eq!(self.words_per_row, 1);
        self.bits[v]
    }

    /// Inserts `to` into `v`'s CSR row at its sorted position.
    fn insert_half_edge(&mut self, v: usize, to: NodeId, weight: f64) {
        let range = self.row_range(v);
        let pos = range.start + self.nbrs[range].partition_point(|&x| x < to);
        self.nbrs.insert(pos, to);
        self.wgts.insert(pos, weight);
        for o in &mut self.offsets[v + 1..] {
            *o += 1;
        }
    }

    /// Adds the undirected edge `(a, b)` with the given weight.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if an endpoint does not exist;
    /// * [`GraphError::SelfLoop`] if `a == b`;
    /// * [`GraphError::DuplicateEdge`] if the edge is already present;
    /// * [`GraphError::InvalidWeight`] if `weight` is NaN or negative.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: f64) -> Result<()> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if weight.is_nan() || weight < 0.0 {
            return Err(GraphError::InvalidWeight { a, b, weight });
        }
        let (i, j) = (a.index(), b.index());
        if self.bit(i, j) {
            return Err(GraphError::DuplicateEdge(a, b));
        }
        self.set_bit(i, j);
        self.set_bit(j, i);
        self.insert_half_edge(i, b, weight);
        self.insert_half_edge(j, a, weight);
        self.edge_count += 1;
        Ok(())
    }

    /// Returns `true` if the undirected edge `(a, b)` exists.
    ///
    /// A single bit test on the packed adjacency matrix. Out-of-range
    /// endpoints simply yield `false`.
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        let (i, j) = (a.index(), b.index());
        let n = self.node_count();
        i < n && j < n && i != j && self.bit(i, j)
    }

    /// Returns the weight of edge `(a, b)`, or `None` if absent.
    ///
    /// O(log degree): a binary search of `a`'s sorted CSR row.
    pub fn weight(&self, a: NodeId, b: NodeId) -> Option<f64> {
        if !self.has_edge(a, b) {
            return None;
        }
        let range = self.row_range(a.index());
        let pos = self.nbrs[range.clone()].binary_search(&b).ok()?;
        Some(self.wgts[range.start + pos])
    }

    /// The neighbours of `v` as a contiguous slice sorted by node index.
    ///
    /// This is the zero-cost view the VF2 hot path iterates;
    /// [`neighbors`](Graph::neighbors) is the iterator convenience over
    /// the same slice.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbor_slice(&self, v: NodeId) -> &[NodeId] {
        &self.nbrs[self.row_range(v.index())]
    }

    /// Iterates over the neighbours of `v` in increasing node order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.neighbor_slice(v).iter().copied()
    }

    /// Iterates over the incident half-edges of `v` in increasing
    /// neighbour order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn incident(&self, v: NodeId) -> impl ExactSizeIterator<Item = Edge> + '_ {
        let range = self.row_range(v.index());
        self.nbrs[range.clone()]
            .iter()
            .zip(&self.wgts[range])
            .map(|(&to, &weight)| Edge { to, weight })
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Maximum degree over all nodes, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Iterates over all edges as `(a, b, weight)` with `a < b`, in
    /// lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes().flat_map(move |v| {
            self.incident(v)
                .filter(move |e| v < e.to)
                .map(move |e| (v, e.to, e.weight))
        })
    }

    /// Builds the subgraph induced by `nodes`.
    ///
    /// Returns the induced graph together with the mapping from new node
    /// indices to the original identifiers: node `i` of the result
    /// corresponds to `nodes[i]`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] for unknown nodes;
    /// * [`GraphError::DuplicateNode`] if `nodes` repeats an entry (in
    ///   every build profile).
    pub fn induced(&self, nodes: &[NodeId]) -> Result<(Graph, Vec<NodeId>)> {
        let mut pos = vec![usize::MAX; self.node_count()];
        for (i, &v) in nodes.iter().enumerate() {
            self.check_node(v)?;
            if pos[v.index()] != usize::MAX {
                return Err(GraphError::DuplicateNode(v));
            }
            pos[v.index()] = i;
        }
        let g = Graph::build(
            nodes.len(),
            nodes.iter().enumerate().flat_map(|(i, &v)| {
                let pos = &pos;
                self.incident(v).filter_map(move |e| {
                    let j = pos[e.to.index()];
                    (j != usize::MAX && i < j).then_some((i, j, e.weight))
                })
            }),
        )?;
        Ok((g, nodes.to_vec()))
    }

    /// Returns a copy of the graph keeping only edges accepted by `keep`.
    pub fn filter_edges(&self, mut keep: impl FnMut(NodeId, NodeId, f64) -> bool) -> Graph {
        let edges: Vec<(usize, usize, f64)> = self
            .edges()
            .filter(|&(a, b, w)| keep(a, b, w))
            .map(|(a, b, w)| (a.index(), b.index(), w))
            .collect();
        #[allow(clippy::expect_used)]
        let filtered = Graph::build(self.node_count(), edges)
            .expect("invariant: edges filtered from a valid graph stay valid");
        filtered
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}; ",
            self.node_count(),
            self.edge_count()
        )?;
        let mut first = true;
        for (a, b, w) in self.edges() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if (w - 1.0).abs() < f64::EPSILON {
                write!(f, "{a}-{b}")?;
            } else {
                write!(f, "{a}-{b}:{w}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn build_and_query() {
        let g = Graph::from_weighted_edges(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)]).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(n(0), n(1)));
        assert!(g.has_edge(n(1), n(0)));
        assert!(!g.has_edge(n(0), n(2)));
        assert!(!g.has_edge(n(0), n(0)));
        assert_eq!(g.weight(n(2), n(1)), Some(3.0));
        assert_eq!(g.weight(n(0), n(3)), None);
        assert_eq!(g.degree(n(1)), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(n(1), n(1), 1.0), Err(GraphError::SelfLoop(n(1))));
    }

    #[test]
    fn rejects_duplicate_even_reversed() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1), 1.0).unwrap();
        assert_eq!(
            g.add_edge(n(1), n(0), 5.0),
            Err(GraphError::DuplicateEdge(n(1), n(0)))
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(n(0), n(5), 1.0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_bad_weight() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(n(0), n(1), f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(n(0), n(1), -1.0),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn neighbors_are_index_sorted_regardless_of_insertion() {
        // Insert node 3's neighbours backwards; enumeration is ascending.
        let g = Graph::from_edges(5, [(3, 4), (3, 2), (3, 0), (3, 1)]).unwrap();
        let nb: Vec<usize> = g.neighbors(n(3)).map(NodeId::index).collect();
        assert_eq!(nb, vec![0, 1, 2, 4]);
        assert_eq!(g.neighbor_slice(n(3)).len(), 4);
        let inc: Vec<usize> = g.incident(n(3)).map(|e| e.to.index()).collect();
        assert_eq!(inc, vec![0, 1, 2, 4]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (2, 3)]).unwrap();
        let es: Vec<_> = g.edges().map(|(a, b, _)| (a.index(), b.index())).collect();
        // Already lexicographically sorted by construction.
        assert_eq!(es, vec![(0, 1), (0, 2), (0, 3), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_remaps_edges() {
        let g = Graph::from_weighted_edges(5, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0)])
            .unwrap();
        let (sub, back) = g.induced(&[n(1), n(2), n(3)]).unwrap();
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(sub.weight(n(0), n(1)), Some(2.0));
        assert_eq!(sub.weight(n(1), n(2)), Some(3.0));
        assert_eq!(back, vec![n(1), n(2), n(3)]);
    }

    #[test]
    fn induced_rejects_duplicates() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(
            g.induced(&[n(0), n(1), n(0)]).unwrap_err(),
            GraphError::DuplicateNode(n(0))
        );
    }

    #[test]
    fn filter_edges_keeps_weights() {
        let g = Graph::from_weighted_edges(3, [(0, 1, 10.0), (1, 2, 100.0)]).unwrap();
        let fast = g.filter_edges(|_, _, w| w < 50.0);
        assert_eq!(fast.edge_count(), 1);
        assert_eq!(fast.weight(n(0), n(1)), Some(10.0));
        assert_eq!(fast.node_count(), 3);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = Graph::new(1);
        let v = g.add_node();
        assert_eq!(v.index(), 1);
        g.add_edge(n(0), v, 1.0).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn add_node_grows_past_word_boundaries() {
        // Push a graph across the 64-bit row boundary and verify the
        // re-laid-out bit matrix still answers queries correctly.
        let mut g = Graph::new(0);
        for _ in 0..130 {
            g.add_node();
        }
        for i in 1..130 {
            g.add_edge(n(i - 1), n(i), 1.0).unwrap();
        }
        g.add_edge(n(0), n(129), 1.0).unwrap();
        assert!(g.has_edge(n(0), n(129)));
        assert!(g.has_edge(n(64), n(65)));
        assert!(!g.has_edge(n(0), n(64)));
        assert_eq!(g.edge_count(), 130);
        assert_eq!(g.degree(n(0)), 2);
    }

    #[test]
    fn debug_output_mentions_edges() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let dbg = format!("{g:?}");
        assert!(dbg.contains("v0-v1"), "{dbg}");
    }
}
