//! Balanced connected bisection and well-separability.
//!
//! §5.2 of the paper cuts the fast-interaction graph into two connected
//! halves `G1`, `G2` of (nearly) equal size; the edges crossing the cut form
//! the *communication channel* through which misplaced qubit values are
//! exchanged. The Appendix (Theorem 1) proves every bounded-degree graph of
//! maximal degree `k` is *well separable* with parameter `s = 1/k`, i.e. the
//! smaller half is never less than a `1/k` fraction of the larger.
//!
//! [`balanced_connected_bisection`] realizes the constructive argument: it
//! examines spanning-tree edges (a BFS spanning tree has maximum degree at
//! most that of the graph) and removes the edge whose two components are
//! most balanced. A tree centroid argument shows the smaller side has at
//! least `(n−1)/k` vertices, matching the theorem.

use crate::spanning::RootedTree;
use crate::traversal::is_connected;
use crate::{Graph, GraphError, NodeId, Result};

/// A bisection of a connected graph into two connected halves.
#[derive(Clone, Debug)]
pub struct Bisection {
    /// The smaller half (ties broken toward the half containing the
    /// smallest node id).
    pub left: Vec<NodeId>,
    /// The larger half.
    pub right: Vec<NodeId>,
    /// All graph edges with one endpoint in each half — the paper's
    /// *communication channel* (never empty for a connected graph).
    pub channel: Vec<(NodeId, NodeId)>,
}

impl Bisection {
    /// Ratio of the smaller to the larger half, the paper's separability
    /// parameter `s ∈ (0, 1]`.
    pub fn ratio(&self) -> f64 {
        self.left.len() as f64 / self.right.len() as f64
    }
}

/// Splits a connected graph (`n ≥ 2`) into two connected halves as balanced
/// as possible, together with the communication-channel edges.
///
/// The split is found by building BFS spanning trees from a handful of
/// roots and removing the tree edge whose subtree is closest to `n/2`
/// vertices; both sides of a removed tree edge are connected by
/// construction. For a graph of maximal degree `k` the returned ratio is at
/// least `1/k` (Appendix, Theorem 1).
///
/// # Errors
///
/// * [`GraphError::TooSmall`] if the graph has fewer than 2 nodes;
/// * [`GraphError::Disconnected`] if the graph is not connected.
///
/// # Example
///
/// ```
/// use qcp_graph::{bisection::balanced_connected_bisection, generate};
///
/// let b = balanced_connected_bisection(&generate::chain(7))?;
/// assert_eq!(b.left.len(), 3);
/// assert_eq!(b.right.len(), 4);
/// assert_eq!(b.channel.len(), 1);
/// # Ok::<(), qcp_graph::GraphError>(())
/// ```
pub fn balanced_connected_bisection(graph: &Graph) -> Result<Bisection> {
    let n = graph.node_count();
    if n < 2 {
        return Err(GraphError::TooSmall {
            actual: n,
            required: 2,
        });
    }
    if !is_connected(graph) {
        return Err(GraphError::Disconnected);
    }

    // Candidate roots: a few extremes plus node 0 for determinism.
    let mut roots: Vec<NodeId> = vec![NodeId::new(0)];
    if let Some(v) = graph.nodes().max_by_key(|&v| graph.degree(v)) {
        roots.push(v);
    }
    if let Some(v) = graph.nodes().min_by_key(|&v| graph.degree(v)) {
        roots.push(v);
    }
    roots.push(NodeId::new(n / 2));
    roots.push(NodeId::new(n - 1));
    roots.sort_unstable();
    roots.dedup();

    let mut best: Option<(usize, Vec<NodeId>)> = None; // (smaller side size, subtree)
    for root in roots {
        let tree = RootedTree::bfs(graph, root)?;
        // Subtree sizes via reverse BFS order.
        let mut size = vec![1usize; n];
        for v in tree.bottom_up() {
            if let Some(p) = tree.parent(v) {
                size[p.index()] += size[v.index()];
            }
        }
        // Each non-root vertex v defines the cut (parent(v), v) separating
        // its subtree from the rest.
        for &v in tree.nodes().iter().skip(1) {
            let s = size[v.index()].min(n - size[v.index()]);
            let better = match &best {
                None => true,
                Some((bs, _)) => s > *bs,
            };
            if better {
                let subtree = collect_subtree(&tree, v);
                best = Some((size[v.index()].min(n - size[v.index()]), subtree));
            }
        }
    }

    #[allow(clippy::expect_used)]
    let (_, subtree) = best.expect("invariant: a connected graph with n >= 2 yields a tree cut");
    let mut in_sub = vec![false; n];
    for &v in &subtree {
        in_sub[v.index()] = true;
    }
    let complement: Vec<NodeId> = graph.nodes().filter(|v| !in_sub[v.index()]).collect();

    let (mut left, mut right) = if subtree.len() < complement.len()
        || (subtree.len() == complement.len() && subtree.iter().min() < complement.iter().min())
    {
        (subtree, complement)
    } else {
        (complement, subtree)
    };
    left.sort_unstable();
    right.sort_unstable();

    let in_left: Vec<bool> = {
        let mut f = vec![false; n];
        for &v in &left {
            f[v.index()] = true;
        }
        f
    };
    let channel: Vec<(NodeId, NodeId)> = graph
        .edges()
        .filter(|&(a, b, _)| in_left[a.index()] != in_left[b.index()])
        .map(|(a, b, _)| if in_left[a.index()] { (a, b) } else { (b, a) })
        .collect();

    Ok(Bisection {
        left,
        right,
        channel,
    })
}

fn collect_subtree(tree: &RootedTree, v: NodeId) -> Vec<NodeId> {
    let mut stack = vec![v];
    let mut out = Vec::new();
    while let Some(u) = stack.pop() {
        out.push(u);
        stack.extend_from_slice(tree.children(u));
    }
    out
}

/// Recursively bisects `graph` and returns the worst (smallest) ratio of
/// smaller-to-larger half encountered — an empirical measure of the paper's
/// separability parameter `s`.
///
/// Returns `1.0` for graphs with fewer than 2 nodes.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if the graph (or, impossibly for
/// correct bisection, a recursive half) is not connected.
pub fn worst_recursive_ratio(graph: &Graph) -> Result<f64> {
    if graph.node_count() < 2 {
        return Ok(1.0);
    }
    let b = balanced_connected_bisection(graph)?;
    let mut worst = b.ratio();
    for half in [&b.left, &b.right] {
        if half.len() >= 2 {
            let (sub, _) = graph.induced(half)?;
            worst = worst.min(worst_recursive_ratio(&sub)?);
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_valid(graph: &Graph, b: &Bisection) {
        let n = graph.node_count();
        assert_eq!(b.left.len() + b.right.len(), n);
        assert!(b.left.len() <= b.right.len());
        assert!(!b.channel.is_empty());
        // Halves are disjoint and cover all nodes.
        let mut seen = vec![false; n];
        for &v in b.left.iter().chain(&b.right) {
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Both halves induce connected subgraphs.
        for half in [&b.left, &b.right] {
            let (sub, _) = graph.induced(half).unwrap();
            assert!(is_connected(&sub), "half {half:?} not connected");
        }
        // Channel edges really cross.
        let in_left: Vec<bool> = {
            let mut f = vec![false; n];
            for &v in &b.left {
                f[v.index()] = true;
            }
            f
        };
        for &(a, bb) in &b.channel {
            assert!(in_left[a.index()] && !in_left[bb.index()]);
            assert!(graph.has_edge(a, bb));
        }
    }

    #[test]
    fn chain_splits_in_half() {
        let g = generate::chain(10);
        let b = balanced_connected_bisection(&g).unwrap();
        check_valid(&g, &b);
        assert_eq!(b.left.len(), 5);
        assert_eq!(b.channel.len(), 1);
    }

    #[test]
    fn odd_chain_ratio_is_half_or_better() {
        let g = generate::chain(7);
        let b = balanced_connected_bisection(&g).unwrap();
        check_valid(&g, &b);
        assert!(b.ratio() >= 3.0 / 4.0 - 1e-12);
    }

    #[test]
    fn ring_splits_with_two_channel_edges() {
        let g = generate::ring(8);
        let b = balanced_connected_bisection(&g).unwrap();
        check_valid(&g, &b);
        assert_eq!(b.left.len(), 4);
        assert_eq!(b.channel.len(), 2);
    }

    #[test]
    fn star_worst_case_matches_theorem() {
        // A star on n nodes has max degree n-1; the best connected split is
        // 1 vs n-1, ratio 1/(n-1) = 1/k exactly as Theorem 1 promises.
        let g = generate::star(6);
        let b = balanced_connected_bisection(&g).unwrap();
        check_valid(&g, &b);
        assert_eq!(b.left.len(), 1);
        assert!(b.ratio() >= 1.0 / g.max_degree() as f64 - 1e-12);
    }

    #[test]
    fn grid_is_half_separable() {
        let g = generate::grid(4, 5);
        let b = balanced_connected_bisection(&g).unwrap();
        check_valid(&g, &b);
        assert!(b.ratio() >= 0.5, "grid ratio {}", b.ratio());
    }

    #[test]
    fn two_nodes() {
        let g = generate::chain(2);
        let b = balanced_connected_bisection(&g).unwrap();
        check_valid(&g, &b);
        assert_eq!(b.ratio(), 1.0);
    }

    #[test]
    fn rejects_disconnected_and_tiny() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            balanced_connected_bisection(&g).unwrap_err(),
            GraphError::Disconnected
        );
        assert!(matches!(
            balanced_connected_bisection(&Graph::new(1)).unwrap_err(),
            GraphError::TooSmall { .. }
        ));
    }

    #[test]
    fn theorem1_bound_on_random_bounded_degree_trees() {
        let mut rng = StdRng::seed_from_u64(42);
        for k in 2..=4 {
            for n in [5usize, 9, 17, 40] {
                let g = generate::bounded_degree_tree(n, k, &mut rng);
                let b = balanced_connected_bisection(&g).unwrap();
                check_valid(&g, &b);
                let bound = (n as f64 - 1.0) / k as f64;
                assert!(
                    b.left.len() as f64 + 1e-9 >= bound.floor(),
                    "n={n} k={k}: left {} < floor((n-1)/k) {}",
                    b.left.len(),
                    bound.floor()
                );
            }
        }
    }

    #[test]
    fn recursive_ratio_on_chain() {
        let g = generate::chain(16);
        let s = worst_recursive_ratio(&g).unwrap();
        assert!(s >= 0.5 - 1e-12, "chain separability {s}");
    }
}
