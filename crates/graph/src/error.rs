//! Error type for graph operations.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors returned by graph construction and graph algorithms.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index referred to a node outside the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// An edge would connect a node to itself; simple graphs forbid loops.
    SelfLoop(NodeId),
    /// The edge already exists (with a possibly different weight).
    DuplicateEdge(NodeId, NodeId),
    /// A node list that must be duplicate-free repeated an entry.
    DuplicateNode(NodeId),
    /// An edge weight was NaN or negative.
    InvalidWeight {
        /// First endpoint of the edge.
        a: NodeId,
        /// Second endpoint of the edge.
        b: NodeId,
        /// The rejected weight.
        weight: f64,
    },
    /// The algorithm requires a connected graph but the input is not.
    Disconnected,
    /// The graph is too small for the requested operation.
    TooSmall {
        /// Nodes present in the graph.
        actual: usize,
        /// Nodes required by the operation.
        required: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} is not allowed"),
            GraphError::DuplicateEdge(a, b) => write!(f, "edge ({a}, {b}) already exists"),
            GraphError::DuplicateNode(v) => write!(f, "node {v} appears more than once"),
            GraphError::InvalidWeight { a, b, weight } => {
                write!(f, "invalid weight {weight} for edge ({a}, {b})")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::TooSmall { actual, required } => {
                write!(
                    f,
                    "graph has {actual} nodes but the operation requires {required}"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let msg = GraphError::SelfLoop(NodeId::new(4)).to_string();
        assert!(msg.contains("v4"));
        assert!(msg.starts_with("self-loop"));

        let msg = GraphError::NodeOutOfRange {
            node: NodeId::new(9),
            node_count: 3,
        }
        .to_string();
        assert!(msg.contains("v9") && msg.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
