//! Node identifiers.

use std::fmt;

/// Identifier of a graph node.
///
/// A `NodeId` is a dense index into the node array of the [`Graph`] it was
/// issued for; it carries no meaning across graphs. Using a newtype instead
/// of a bare `usize` keeps node indices from being confused with qubit
/// indices or positions in unrelated arrays (the placement code juggles all
/// three).
///
/// ```
/// use qcp_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "v3");
/// ```
///
/// [`Graph`]: crate::Graph
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (graphs this large are far
    /// beyond any realistic placement instance).
    #[inline]
    pub fn new(index: usize) -> Self {
        match u32::try_from(index) {
            Ok(i) => NodeId(i),
            Err(_) => panic!("node index {index} exceeds u32::MAX"),
        }
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.index()
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        for i in [0usize, 1, 17, 4096] {
            assert_eq!(NodeId::new(i).index(), i);
            assert_eq!(usize::from(NodeId::from(i)), i);
        }
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(12).to_string(), "v12");
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn oversized_index_panics() {
        let _ = NodeId::new(u32::MAX as usize + 1);
    }
}
