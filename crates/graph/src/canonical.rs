//! Graph canonicalization: iterated degree (colour) refinement, orbit
//! partitioning, and a stable [`CanonicalFingerprint`].
//!
//! The placement pipeline of Maslov–Falconer–Mosca treats a circuit as
//! its interaction graph and an environment as its fast-interaction
//! graph; two requests whose graphs are isomorphic are *the same
//! placement problem* (the monomorphism formulation of §5 is blind to
//! vertex labels). This module computes a canonical form so equal
//! problems can be recognised in O(poly n) and their results shared —
//! the canonicalization-keyed result cache of `qcp_place::cache` is the
//! consumer.
//!
//! The algorithm is the classic individualization–refinement scheme:
//!
//! 1. **Refinement** ([`refine`]): iterated Weisfeiler–Leman colour
//!    refinement seeded with degrees. Each round recolours every node by
//!    the sorted multiset of its neighbours' `(colour, weight)` pairs;
//!    colour ids are assigned by *rank* of the signature (not by hash),
//!    so they are isomorphism-invariant and collision-free by
//!    construction. The fixed point partitions nodes into refinement
//!    cells — the orbit partition reported by [`orbits`].
//! 2. **Individualization** ([`canonical_form`]): while some cell has
//!    more than one member, one member of the first such cell is given a
//!    fresh colour and refinement re-runs. At these sizes (device
//!    topologies and circuit interaction graphs, tens of nodes)
//!    refinement separates everything that is not genuinely symmetric,
//!    so tied nodes are automorphic images of each other and any
//!    tie-break yields the same certificate.
//!
//! The certificate — node count, and each canonical node's weighted
//! adjacency written in canonical indices — is hashed into a 128-bit
//! [`CanonicalFingerprint`]. Equal fingerprints on refinement-
//! distinguishable graphs mean isomorphic graphs; callers needing an
//! *exact* guarantee (the placement cache) layer a structure-complete
//! encoding on top and use the canonical order only as the witness.

use std::fmt;

use crate::{Graph, NodeId};

/// A 128-bit FNV-1a fingerprint of a canonical certificate.
///
/// 128 bits instead of the workspace's usual 64: fingerprints key a
/// result *cache*, where a collision would silently serve one circuit
/// another circuit's placement — so the collision budget is set far
/// below any realistic request volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalFingerprint(u128);

impl CanonicalFingerprint {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Folds the fingerprint to 64 bits (for mixing into other hashes).
    pub fn fold64(self) -> u64 {
        (self.0 as u64) ^ ((self.0 >> 64) as u64)
    }
}

impl fmt::Display for CanonicalFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Streaming 128-bit FNV-1a hasher used to build fingerprints.
#[derive(Clone, Debug)]
pub struct FingerprintHasher(u128);

impl Default for FingerprintHasher {
    fn default() -> Self {
        // FNV-1a 128-bit offset basis.
        FingerprintHasher(0x6c62_272e_07bb_0142_62b8_2175_6295_c58d)
    }
}

impl FingerprintHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mixes one 64-bit word (byte by byte, FNV-1a).
    pub fn mix(&mut self, word: u64) -> &mut Self {
        // FNV-1a 128-bit prime.
        const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
        for byte in word.to_le_bytes() {
            self.0 ^= u128::from(byte);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// Mixes raw bytes (for names and other variable-length payloads).
    pub fn mix_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.mix(bytes.len() as u64);
        const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
        for &byte in bytes {
            self.0 ^= u128::from(byte);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> CanonicalFingerprint {
        CanonicalFingerprint(self.0)
    }
}

/// Edge weights enter signatures through their bit patterns; collapse
/// `-0.0` onto `0.0` so the two spellings of zero cannot split a cell.
fn weight_bits(w: f64) -> u64 {
    if w == 0.0 { 0.0f64 } else { w }.to_bits()
}

/// One round of colour refinement: recolours every node by
/// `(old colour, sorted neighbour (colour, weight) pairs)` and assigns
/// new dense colour ids by signature *rank*. Returns the new colours and
/// the number of distinct colours.
fn refine_round(graph: &Graph, colors: &[u64]) -> (Vec<u64>, usize) {
    let n = graph.node_count();
    let mut signatures: Vec<(Vec<u64>, usize)> = Vec::with_capacity(n);
    for v in graph.nodes() {
        let mut sig: Vec<u64> = Vec::with_capacity(2 * graph.degree(v) + 1);
        sig.push(colors[v.index()]);
        let mut nbrs: Vec<(u64, u64)> = graph
            .neighbors(v)
            .map(|u| {
                let w = graph.weight(v, u).unwrap_or(f64::INFINITY);
                (colors[u.index()], weight_bits(w))
            })
            .collect();
        nbrs.sort_unstable();
        for (c, w) in nbrs {
            sig.push(c);
            sig.push(w);
        }
        signatures.push((sig, v.index()));
    }
    // Rank-based colour ids: sort the distinct signatures and use each
    // signature's rank as its node's new colour. Ranks are invariant
    // under relabelling because the signatures themselves are.
    let mut sorted: Vec<&(Vec<u64>, usize)> = signatures.iter().collect();
    sorted.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut new_colors = vec![0u64; n];
    let mut next = 0u64;
    let mut previous: Option<&[u64]> = None;
    for entry in sorted {
        if previous != Some(entry.0.as_slice()) {
            previous = Some(entry.0.as_slice());
            next += 1;
        }
        new_colors[entry.1] = next - 1;
    }
    (new_colors, next as usize)
}

/// Iterated colour refinement from the given seed colours to a fixed
/// point. The seed must itself be isomorphism-invariant (degrees, or a
/// previous refinement plus one individualized node) for the result to
/// be.
pub fn refine_seeded(graph: &Graph, seed: &[u64]) -> Vec<u64> {
    let n = graph.node_count();
    debug_assert_eq!(seed.len(), n);
    let (mut colors, mut classes) = refine_round(graph, seed);
    // A strictly refining sequence of partitions on n nodes has length
    // at most n; the loop is bounded even without the fixed-point test.
    for _ in 0..n {
        let (next, next_classes) = refine_round(graph, &colors);
        if next_classes == classes {
            return next;
        }
        colors = next;
        classes = next_classes;
    }
    colors
}

/// Stable Weisfeiler–Leman colours seeded with degrees: nodes with
/// different colours are in different orbits of the automorphism group
/// (the converse holds for every refinement-distinguishable graph —
/// which includes all the trees, grids, rings and molecule graphs this
/// workspace handles).
pub fn refine(graph: &Graph) -> Vec<u64> {
    let seed: Vec<u64> = graph.nodes().map(|v| graph.degree(v) as u64).collect();
    if seed.is_empty() {
        return seed;
    }
    refine_seeded(graph, &seed)
}

/// The refinement-cell partition as dense orbit ids (one per node, ids
/// contiguous from 0 in colour order).
pub fn orbits(graph: &Graph) -> Vec<usize> {
    refine(graph).iter().map(|&c| c as usize).collect()
}

/// A canonical form: the fingerprint plus the canonical node order that
/// witnesses it.
#[derive(Clone, Debug)]
pub struct CanonicalForm {
    /// Fingerprint of the canonical adjacency certificate.
    pub fingerprint: CanonicalFingerprint,
    /// `order[i]` is the original node occupying canonical position `i`.
    pub order: Vec<NodeId>,
    /// Number of refinement cells (orbits) before individualization.
    pub orbit_count: usize,
}

/// Ceiling on discrete colourings examined per [`canonical_form`] call.
/// Real workloads (interaction graphs and device topologies, tens of
/// nodes, symmetry groups generated by a few reflections/rotations) need
/// well under a hundred leaves; the backstop only matters for
/// adversarially symmetric WL-hard graphs, where the search degrades to
/// a deterministic (but possibly labelling-dependent) certificate.
const LEAF_BUDGET: usize = 512;

/// Min-certificate individualization–refinement search state.
struct CanonicalSearch<'g> {
    graph: &'g Graph,
    /// Best (lexicographically smallest) certificate and its witness.
    best: Option<(Vec<u64>, Vec<NodeId>)>,
    leaves: usize,
}

impl CanonicalSearch<'_> {
    /// Recursively individualizes the first non-singleton cell. Branches
    /// on one member per *twin class* (two cell members whose
    /// neighbourhoods coincide off each other are swapped by an
    /// automorphism, so their branches yield equal certificates) and
    /// keeps the minimum certificate over all explored leaves.
    fn explore(&mut self, colors: Vec<u64>) {
        if self.leaves >= LEAF_BUDGET {
            return;
        }
        let n = colors.len();
        if distinct(&colors) == n {
            self.leaves += 1;
            let leaf = self.certificate(&colors);
            if self.best.as_ref().is_none_or(|(b, _)| leaf.0 < *b) {
                self.best = Some(leaf);
            }
            return;
        }
        let mut counts = vec![0usize; n];
        for &c in &colors {
            counts[c as usize] += 1;
        }
        let target = counts.iter().position(|&k| k > 1).unwrap_or(0) as u64;
        let members: Vec<usize> = (0..n).filter(|&v| colors[v] == target).collect();
        let mut skip = vec![false; members.len()];
        for i in 0..members.len() {
            if skip[i] {
                continue;
            }
            for j in (i + 1)..members.len() {
                if !skip[j] && self.twins(members[i], members[j]) {
                    skip[j] = true;
                }
            }
            let mut seed: Vec<u64> = colors.iter().map(|&c| c * 2).collect();
            seed[members[i]] += 1;
            self.explore(refine_seeded(self.graph, &seed));
        }
    }

    /// Whether the transposition of `u` and `v` is an automorphism:
    /// their weighted neighbourhoods agree once each is removed from the
    /// other's. Catches the interchangeable-vertex pathologies (empty,
    /// complete, complete multipartite cells) that would otherwise make
    /// the branch tree factorial.
    fn twins(&self, u: usize, v: usize) -> bool {
        let side = |a: usize, other: usize| -> Vec<(usize, u64)> {
            let mut nbrs: Vec<(usize, u64)> = self
                .graph
                .neighbors(NodeId::new(a))
                .filter(|x| x.index() != other)
                .map(|x| {
                    let w = self
                        .graph
                        .weight(NodeId::new(a), x)
                        .unwrap_or(f64::INFINITY);
                    (x.index(), weight_bits(w))
                })
                .collect();
            nbrs.sort_unstable();
            nbrs
        };
        side(u, v) == side(v, u)
    }

    /// The certificate of a discrete colouring: node count, edge count,
    /// then each canonical node's sorted weighted adjacency written in
    /// canonical indices. Lexicographic comparison of these word
    /// sequences picks the canonical leaf.
    fn certificate(&self, colors: &[u64]) -> (Vec<u64>, Vec<NodeId>) {
        let n = colors.len();
        let mut order: Vec<NodeId> = self.graph.nodes().collect();
        order.sort_unstable_by_key(|v| colors[v.index()]);
        let mut canonical_index = vec![0usize; n];
        for (i, v) in order.iter().enumerate() {
            canonical_index[v.index()] = i;
        }
        let mut words = Vec::with_capacity(2 + n + 4 * self.graph.edge_count());
        words.push(n as u64);
        words.push(self.graph.edge_count() as u64);
        for &v in &order {
            let mut nbrs: Vec<(u64, u64)> = self
                .graph
                .neighbors(v)
                .map(|u| {
                    let w = self.graph.weight(v, u).unwrap_or(f64::INFINITY);
                    (canonical_index[u.index()] as u64, weight_bits(w))
                })
                .collect();
            nbrs.sort_unstable();
            words.push(nbrs.len() as u64);
            for (ci, w) in nbrs {
                words.push(ci);
                words.push(w);
            }
        }
        (words, order)
    }
}

/// Computes the canonical form by min-certificate
/// individualization–refinement: every member of the first non-singleton
/// refinement cell is individualized in turn (one representative per
/// automorphic twin class), the search recurses to a discrete colouring,
/// and the lexicographically smallest certificate over all explored
/// leaves wins. Branching over the whole cell — rather than picking one
/// member — is what makes the certificate relabelling-invariant even on
/// regular graphs whose refinement partition is a single cell.
pub fn canonical_form(graph: &Graph) -> CanonicalForm {
    let colors = refine(graph);
    let orbit_count = distinct(&colors);
    let mut search = CanonicalSearch {
        graph,
        best: None,
        leaves: 0,
    };
    search.explore(colors);
    let (words, order) = search.best.unwrap_or_else(|| (vec![0, 0], Vec::new()));
    let mut hasher = FingerprintHasher::new();
    for word in words {
        hasher.mix(word);
    }
    CanonicalForm {
        fingerprint: hasher.finish(),
        order,
        orbit_count,
    }
}

/// The canonical fingerprint alone (see [`canonical_form`]).
pub fn fingerprint(graph: &Graph) -> CanonicalFingerprint {
    canonical_form(graph).fingerprint
}

fn distinct(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    /// Relabels a graph through the permutation `perm` (`perm[old] = new`).
    fn relabel(graph: &Graph, perm: &[usize]) -> Graph {
        let edges: Vec<(usize, usize, f64)> = graph
            .edges()
            .map(|(a, b, w)| (perm[a.index()], perm[b.index()], w))
            .collect();
        Graph::from_weighted_edges(graph.node_count(), edges).expect("relabel")
    }

    #[test]
    fn fingerprint_invariant_under_relabeling() {
        for graph in [
            generate::chain(9),
            generate::ring(12),
            generate::grid(3, 4),
            generate::star(7),
        ] {
            let n = graph.node_count();
            let base = fingerprint(&graph);
            // A fixed non-trivial permutation plus a rotation.
            let reversed: Vec<usize> = (0..n).rev().collect();
            let rotated: Vec<usize> = (0..n).map(|i| (i + 3) % n).collect();
            for perm in [reversed, rotated] {
                assert_eq!(fingerprint(&relabel(&graph, &perm)), base);
            }
        }
    }

    #[test]
    fn near_misses_have_distinct_fingerprints() {
        let chain = generate::chain(8);
        let ring = generate::ring(8);
        assert_ne!(fingerprint(&chain), fingerprint(&ring));
        // One added edge changes the certificate.
        let mut plus = chain.clone();
        plus.add_edge(NodeId::new(0), NodeId::new(4), 1.0).unwrap();
        assert_ne!(fingerprint(&chain), fingerprint(&plus));
        // Different weights on the same topology are different problems.
        let light = Graph::from_weighted_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let heavy = Graph::from_weighted_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        assert_ne!(fingerprint(&light), fingerprint(&heavy));
    }

    #[test]
    fn orbit_partition_matches_symmetry() {
        // A chain of 5 has 3 orbits: ends, their neighbours, the centre.
        let orbit_ids = orbits(&generate::chain(5));
        assert_eq!(
            distinct(&orbit_ids.iter().map(|&o| o as u64).collect::<Vec<_>>()),
            3
        );
        assert_eq!(orbit_ids[0], orbit_ids[4]);
        assert_eq!(orbit_ids[1], orbit_ids[3]);
        // Rings and complete graphs are vertex-transitive: one orbit.
        assert_eq!(orbits(&generate::ring(6)), vec![0; 6]);
        // A star has two orbits: hub and leaves.
        let star = orbits(&generate::star(5));
        assert_eq!(star.iter().filter(|&&o| o != star[0]).count(), 5 - 1);
    }

    #[test]
    fn canonical_order_is_a_permutation() {
        let graph = generate::grid(3, 3);
        let form = canonical_form(&graph);
        let mut seen = [false; 9];
        for v in &form.order {
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
        assert!(form.orbit_count >= 1);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = Graph::new(0);
        let one = Graph::new(1);
        assert_ne!(fingerprint(&empty), fingerprint(&one));
        assert_eq!(canonical_form(&empty).order.len(), 0);
        assert_eq!(canonical_form(&one).order.len(), 1);
    }

    #[test]
    fn fingerprint_display_is_hex() {
        let fp = fingerprint(&generate::chain(3));
        assert_eq!(fp.to_string().len(), 32);
        assert_eq!(fp.fold64(), fp.fold64());
    }
}
