//! Graph canonicalization: iterated degree (colour) refinement, orbit
//! partitioning, and a stable [`CanonicalFingerprint`].
//!
//! The placement pipeline of Maslov–Falconer–Mosca treats a circuit as
//! its interaction graph and an environment as its fast-interaction
//! graph; two requests whose graphs are isomorphic are *the same
//! placement problem* (the monomorphism formulation of §5 is blind to
//! vertex labels). This module computes a canonical form so equal
//! problems can be recognised in O(poly n) and their results shared —
//! the canonicalization-keyed result cache of `qcp_place::cache` is the
//! consumer.
//!
//! The algorithm is the classic individualization–refinement scheme:
//!
//! 1. **Refinement** ([`refine`]): iterated Weisfeiler–Leman colour
//!    refinement seeded with degrees. Each round recolours every node by
//!    the sorted multiset of its neighbours' `(colour, weight)` pairs;
//!    colour ids are assigned by *rank* of the signature (not by hash),
//!    so they are isomorphism-invariant and collision-free by
//!    construction. The fixed point partitions nodes into refinement
//!    cells — the orbit partition reported by [`orbits`].
//! 2. **Individualization** ([`canonical_form`]): while some cell has
//!    more than one member, one member of the first such cell is given a
//!    fresh colour and refinement re-runs. At these sizes (device
//!    topologies and circuit interaction graphs, tens of nodes)
//!    refinement separates everything that is not genuinely symmetric,
//!    so tied nodes are automorphic images of each other and any
//!    tie-break yields the same certificate.
//!
//! The certificate — node count, and each canonical node's weighted
//! adjacency written in canonical indices — is hashed into a 128-bit
//! [`CanonicalFingerprint`]. Equal fingerprints on refinement-
//! distinguishable graphs mean isomorphic graphs; callers needing an
//! *exact* guarantee (the placement cache) layer a structure-complete
//! encoding on top and use the canonical order only as the witness.

use std::fmt;

use crate::{Graph, NodeId};

/// A 128-bit FNV-1a fingerprint of a canonical certificate.
///
/// 128 bits instead of the workspace's usual 64: fingerprints key a
/// result *cache*, where a collision would silently serve one circuit
/// another circuit's placement — so the collision budget is set far
/// below any realistic request volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalFingerprint(u128);

impl CanonicalFingerprint {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Folds the fingerprint to 64 bits (for mixing into other hashes).
    pub fn fold64(self) -> u64 {
        (self.0 as u64) ^ ((self.0 >> 64) as u64)
    }
}

impl fmt::Display for CanonicalFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Streaming 128-bit FNV-1a hasher used to build fingerprints.
#[derive(Clone, Debug)]
pub struct FingerprintHasher(u128);

impl Default for FingerprintHasher {
    fn default() -> Self {
        // FNV-1a 128-bit offset basis.
        FingerprintHasher(0x6c62_272e_07bb_0142_62b8_2175_6295_c58d)
    }
}

impl FingerprintHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mixes one 64-bit word (byte by byte, FNV-1a).
    pub fn mix(&mut self, word: u64) -> &mut Self {
        // FNV-1a 128-bit prime.
        const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
        for byte in word.to_le_bytes() {
            self.0 ^= u128::from(byte);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// Mixes raw bytes (for names and other variable-length payloads).
    pub fn mix_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.mix(bytes.len() as u64);
        const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
        for &byte in bytes {
            self.0 ^= u128::from(byte);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> CanonicalFingerprint {
        CanonicalFingerprint(self.0)
    }
}

/// Edge weights enter signatures through their bit patterns; collapse
/// `-0.0` onto `0.0` so the two spellings of zero cannot split a cell.
fn weight_bits(w: f64) -> u64 {
    if w == 0.0 { 0.0f64 } else { w }.to_bits()
}

/// One round of colour refinement: recolours every node by
/// `(old colour, sorted neighbour (colour, weight) pairs)` and assigns
/// new dense colour ids by signature *rank*. Returns the new colours and
/// the number of distinct colours.
fn refine_round(graph: &Graph, colors: &[u64]) -> (Vec<u64>, usize) {
    let n = graph.node_count();
    let mut signatures: Vec<(Vec<u64>, usize)> = Vec::with_capacity(n);
    for v in graph.nodes() {
        let mut sig: Vec<u64> = Vec::with_capacity(2 * graph.degree(v) + 1);
        sig.push(colors[v.index()]);
        let mut nbrs: Vec<(u64, u64)> = graph
            .neighbors(v)
            .map(|u| {
                let w = graph.weight(v, u).unwrap_or(f64::INFINITY);
                (colors[u.index()], weight_bits(w))
            })
            .collect();
        nbrs.sort_unstable();
        for (c, w) in nbrs {
            sig.push(c);
            sig.push(w);
        }
        signatures.push((sig, v.index()));
    }
    // Rank-based colour ids: sort the distinct signatures and use each
    // signature's rank as its node's new colour. Ranks are invariant
    // under relabelling because the signatures themselves are.
    let mut sorted: Vec<&(Vec<u64>, usize)> = signatures.iter().collect();
    sorted.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut new_colors = vec![0u64; n];
    let mut next = 0u64;
    let mut previous: Option<&[u64]> = None;
    for entry in sorted {
        if previous != Some(entry.0.as_slice()) {
            previous = Some(entry.0.as_slice());
            next += 1;
        }
        new_colors[entry.1] = next - 1;
    }
    (new_colors, next as usize)
}

/// Iterated colour refinement from the given seed colours to a fixed
/// point. The seed must itself be isomorphism-invariant (degrees, or a
/// previous refinement plus one individualized node) for the result to
/// be.
pub fn refine_seeded(graph: &Graph, seed: &[u64]) -> Vec<u64> {
    let n = graph.node_count();
    debug_assert_eq!(seed.len(), n);
    let (mut colors, mut classes) = refine_round(graph, seed);
    // A strictly refining sequence of partitions on n nodes has length
    // at most n; the loop is bounded even without the fixed-point test.
    for _ in 0..n {
        let (next, next_classes) = refine_round(graph, &colors);
        if next_classes == classes {
            return next;
        }
        colors = next;
        classes = next_classes;
    }
    colors
}

/// Stable Weisfeiler–Leman colours seeded with degrees: nodes with
/// different colours are in different orbits of the automorphism group
/// (the converse holds for every refinement-distinguishable graph —
/// which includes all the trees, grids, rings and molecule graphs this
/// workspace handles).
pub fn refine(graph: &Graph) -> Vec<u64> {
    let seed: Vec<u64> = graph.nodes().map(|v| graph.degree(v) as u64).collect();
    if seed.is_empty() {
        return seed;
    }
    refine_seeded(graph, &seed)
}

/// The refinement-cell partition as dense orbit ids (one per node, ids
/// contiguous from 0 in colour order).
pub fn orbits(graph: &Graph) -> Vec<usize> {
    refine(graph).iter().map(|&c| c as usize).collect()
}

/// A canonical form: the fingerprint plus the canonical node order that
/// witnesses it.
#[derive(Clone, Debug)]
pub struct CanonicalForm {
    /// Fingerprint of the canonical adjacency certificate.
    pub fingerprint: CanonicalFingerprint,
    /// `order[i]` is the original node occupying canonical position `i`.
    pub order: Vec<NodeId>,
    /// Number of refinement cells (orbits) before individualization.
    pub orbit_count: usize,
    /// Whether the individualization search hit [`LEAF_BUDGET`] before
    /// exhausting every branch. An exhausted certificate is still
    /// deterministic for a *fixed* labelling, but may differ between
    /// relabellings of the same graph — callers keying caches on the
    /// fingerprint must treat it as unusable for sharing.
    pub exhausted: bool,
}

/// Ceiling on discrete colourings examined per [`canonical_form`] call.
/// Real workloads (interaction graphs and device topologies, tens of
/// nodes, symmetry groups generated by a few reflections/rotations) need
/// well under a hundred leaves; the backstop only matters for
/// adversarially symmetric WL-hard graphs, where the search degrades to
/// a deterministic (but possibly labelling-dependent) certificate.
const LEAF_BUDGET: usize = 512;

/// Min-certificate individualization–refinement search state.
struct CanonicalSearch<'g> {
    graph: &'g Graph,
    /// Best (lexicographically smallest) certificate and its witness.
    best: Option<(Vec<u64>, Vec<NodeId>)>,
    leaves: usize,
    /// Set when a branch was abandoned because the leaf budget ran out.
    exhausted: bool,
}

impl CanonicalSearch<'_> {
    /// Recursively individualizes the first non-singleton cell. Branches
    /// on one member per *twin class* (two cell members whose
    /// neighbourhoods coincide off each other are swapped by an
    /// automorphism, so their branches yield equal certificates) and
    /// keeps the minimum certificate over all explored leaves.
    fn explore(&mut self, colors: Vec<u64>) {
        if self.leaves >= LEAF_BUDGET {
            // Unexplored branch abandoned: the minimum over the leaves
            // seen so far may not be the global minimum, so the
            // certificate is potentially labelling-dependent.
            self.exhausted = true;
            return;
        }
        let n = colors.len();
        if distinct(&colors) == n {
            self.leaves += 1;
            let leaf = self.certificate(&colors);
            if self.best.as_ref().is_none_or(|(b, _)| leaf.0 < *b) {
                self.best = Some(leaf);
            }
            return;
        }
        let mut counts = vec![0usize; n];
        for &c in &colors {
            counts[c as usize] += 1;
        }
        let target = counts.iter().position(|&k| k > 1).unwrap_or(0) as u64;
        let members: Vec<usize> = (0..n).filter(|&v| colors[v] == target).collect();
        let mut skip = vec![false; members.len()];
        for i in 0..members.len() {
            if skip[i] {
                continue;
            }
            for j in (i + 1)..members.len() {
                if !skip[j] && self.twins(members[i], members[j]) {
                    skip[j] = true;
                }
            }
            let mut seed: Vec<u64> = colors.iter().map(|&c| c * 2).collect();
            seed[members[i]] += 1;
            self.explore(refine_seeded(self.graph, &seed));
        }
    }

    /// Whether the transposition of `u` and `v` is an automorphism:
    /// their weighted neighbourhoods agree once each is removed from the
    /// other's. Catches the interchangeable-vertex pathologies (empty,
    /// complete, complete multipartite cells) that would otherwise make
    /// the branch tree factorial.
    fn twins(&self, u: usize, v: usize) -> bool {
        let side = |a: usize, other: usize| -> Vec<(usize, u64)> {
            let mut nbrs: Vec<(usize, u64)> = self
                .graph
                .neighbors(NodeId::new(a))
                .filter(|x| x.index() != other)
                .map(|x| {
                    let w = self
                        .graph
                        .weight(NodeId::new(a), x)
                        .unwrap_or(f64::INFINITY);
                    (x.index(), weight_bits(w))
                })
                .collect();
            nbrs.sort_unstable();
            nbrs
        };
        side(u, v) == side(v, u)
    }

    /// The certificate of a discrete colouring: node count, edge count,
    /// then each canonical node's sorted weighted adjacency written in
    /// canonical indices. Lexicographic comparison of these word
    /// sequences picks the canonical leaf.
    fn certificate(&self, colors: &[u64]) -> (Vec<u64>, Vec<NodeId>) {
        let n = colors.len();
        let mut order: Vec<NodeId> = self.graph.nodes().collect();
        order.sort_unstable_by_key(|v| colors[v.index()]);
        let mut canonical_index = vec![0usize; n];
        for (i, v) in order.iter().enumerate() {
            canonical_index[v.index()] = i;
        }
        let mut words = Vec::with_capacity(2 + n + 4 * self.graph.edge_count());
        words.push(n as u64);
        words.push(self.graph.edge_count() as u64);
        for &v in &order {
            let mut nbrs: Vec<(u64, u64)> = self
                .graph
                .neighbors(v)
                .map(|u| {
                    let w = self.graph.weight(v, u).unwrap_or(f64::INFINITY);
                    (canonical_index[u.index()] as u64, weight_bits(w))
                })
                .collect();
            nbrs.sort_unstable();
            words.push(nbrs.len() as u64);
            for (ci, w) in nbrs {
                words.push(ci);
                words.push(w);
            }
        }
        (words, order)
    }
}

/// Computes the canonical form by min-certificate
/// individualization–refinement: every member of the first non-singleton
/// refinement cell is individualized in turn (one representative per
/// automorphic twin class), the search recurses to a discrete colouring,
/// and the lexicographically smallest certificate over all explored
/// leaves wins. Branching over the whole cell — rather than picking one
/// member — is what makes the certificate relabelling-invariant even on
/// regular graphs whose refinement partition is a single cell.
pub fn canonical_form(graph: &Graph) -> CanonicalForm {
    let colors = refine(graph);
    let orbit_count = distinct(&colors);
    let mut search = CanonicalSearch {
        graph,
        best: None,
        leaves: 0,
        exhausted: false,
    };
    search.explore(colors);
    let (words, order) = search.best.unwrap_or_else(|| (vec![0, 0], Vec::new()));
    let mut hasher = FingerprintHasher::new();
    for word in words {
        hasher.mix(word);
    }
    CanonicalForm {
        fingerprint: hasher.finish(),
        order,
        orbit_count,
        exhausted: search.exhausted,
    }
}

/// The canonical fingerprint alone (see [`canonical_form`]).
pub fn fingerprint(graph: &Graph) -> CanonicalFingerprint {
    canonical_form(graph).fingerprint
}

/// Explicit, verified automorphism generators and the orbit partition
/// they span.
///
/// Unlike [`orbits`], which reports Weisfeiler–Leman refinement cells
/// (an *upper bound* on the true orbits — WL can merge nodes no
/// automorphism relates, e.g. same-degree nodes of two different-length
/// rings), every orbit reported here is witnessed by explicit
/// permutations that were checked edge-by-edge. The partition is
/// therefore always a refinement of the true orbit partition and safe
/// to use for symmetry pruning: two nodes in one orbit really are
/// interchangeable.
#[derive(Clone, Debug)]
pub struct Automorphisms {
    /// Verified generating permutations (`perm[old] = image`). Not
    /// necessarily a minimal generating set.
    pub generators: Vec<Vec<usize>>,
    /// Dense orbit ids, one per node, contiguous from 0 in order of
    /// first appearance by node index.
    pub orbits: Vec<usize>,
    /// Whether the generator search ran to completion. When `false`
    /// (node-budget backstop tripped) the orbit partition may be finer
    /// than the true one — still sound for pruning, just less
    /// aggressive.
    pub complete: bool,
}

/// Ceiling on backtracking steps across one [`automorphisms`] call.
/// Device topologies (grids, rings, heavy-hex, tens of nodes) finish in
/// a few thousand steps; the backstop guards adversarial inputs.
const AUTOMORPHISM_STEP_BUDGET: usize = 200_000;

/// Searches for one automorphism mapping `anchor` to `image`, extending
/// node-by-node in `order` (a BFS order from `anchor` so each new node
/// is anchored by mapped neighbours early). Candidates must share the
/// WL colour and preserve the weighted adjacency relation against
/// *every* already-mapped node — presence, absence, and weight alike —
/// so any completed mapping is an automorphism by construction.
struct AutomorphismSearch<'g> {
    graph: &'g Graph,
    colors: &'g [u64],
    order: Vec<usize>,
    steps: &'g mut usize,
}

enum AutomorphismOutcome {
    Found(Vec<usize>),
    NotFound,
    Exhausted,
}

impl AutomorphismSearch<'_> {
    fn run(&mut self, anchor: usize, image: usize) -> AutomorphismOutcome {
        let n = self.graph.node_count();
        let mut mapping = vec![usize::MAX; n];
        let mut used = vec![false; n];
        mapping[anchor] = image;
        used[image] = true;
        match self.extend(1, &mut mapping, &mut used) {
            Some(true) => AutomorphismOutcome::Found(mapping),
            Some(false) => AutomorphismOutcome::NotFound,
            None => AutomorphismOutcome::Exhausted,
        }
    }

    /// `Some(true)` = completed, `Some(false)` = no extension exists,
    /// `None` = step budget exhausted.
    fn extend(&mut self, depth: usize, mapping: &mut [usize], used: &mut [bool]) -> Option<bool> {
        if depth == self.order.len() {
            return Some(true);
        }
        if *self.steps >= AUTOMORPHISM_STEP_BUDGET {
            return None;
        }
        *self.steps += 1;
        let u = self.order[depth];
        'candidates: for w in 0..mapping.len() {
            if used[w] || self.colors[w] != self.colors[u] {
                continue;
            }
            // The relation to every mapped node must carry over exactly:
            // same edge/non-edge, same weight.
            for &x in &self.order[..depth] {
                let y = mapping[x];
                let uv = NodeId::new(u);
                let xv = NodeId::new(x);
                let have = self.graph.weight(uv, xv).map(weight_bits);
                let want = self
                    .graph
                    .weight(NodeId::new(w), NodeId::new(y))
                    .map(weight_bits);
                if have != want {
                    continue 'candidates;
                }
            }
            mapping[u] = w;
            used[w] = true;
            match self.extend(depth + 1, mapping, used) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            mapping[u] = usize::MAX;
            used[w] = false;
        }
        Some(false)
    }
}

/// Checks a claimed permutation really is a weighted-graph automorphism.
fn is_automorphism(graph: &Graph, perm: &[usize]) -> bool {
    if perm.len() != graph.node_count() {
        return false;
    }
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    graph.edges().all(|(a, b, w)| {
        graph
            .weight(NodeId::new(perm[a.index()]), NodeId::new(perm[b.index()]))
            .map(weight_bits)
            == Some(weight_bits(w))
    })
}

/// A BFS order over all nodes starting from `anchor` (remaining
/// components appended in index order), so the backtracking search maps
/// each node with as many mapped neighbours as possible.
fn anchored_order(graph: &Graph, anchor: usize) -> Vec<usize> {
    let n = graph.node_count();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    if n > 0 {
        seen[anchor] = true;
        queue.push_back(anchor);
    }
    for fallback in 0..=n {
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = graph.neighbors(NodeId::new(v)).map(NodeId::index).collect();
            nbrs.sort_unstable();
            for u in nbrs {
                if !seen[u] {
                    seen[u] = true;
                    queue.push_back(u);
                }
            }
        }
        if fallback < n && !seen[fallback] {
            seen[fallback] = true;
            queue.push_back(fallback);
        }
    }
    order
}

/// Computes verified automorphism generators and their orbit partition.
///
/// Within each WL refinement cell, members are matched against the
/// orbit representatives discovered so far: a backtracking search
/// (candidates filtered by WL colour, extension checked against every
/// mapped node, completed mappings re-verified edge-by-edge) either
/// produces an explicit generator — merging the two orbits — or proves
/// no automorphism relates them. Cross-cell pairs need no search: WL
/// colours are automorphism-invariant, so differently-coloured nodes
/// are never in one orbit.
pub fn automorphisms(graph: &Graph) -> Automorphisms {
    let n = graph.node_count();
    let colors = refine(graph);
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    let mut generators = Vec::new();
    let mut complete = true;
    let mut steps = 0usize;

    // Cells in colour order, members in index order: deterministic.
    let mut cells: std::collections::BTreeMap<u64, Vec<usize>> = std::collections::BTreeMap::new();
    for (v, &color) in colors.iter().enumerate() {
        cells.entry(color).or_default().push(v);
    }
    'cells: for members in cells.values() {
        if members.len() < 2 {
            continue;
        }
        // Orbit representatives discovered so far within this cell.
        let mut reps: Vec<usize> = vec![members[0]];
        for &v in &members[1..] {
            if reps
                .iter()
                .any(|&r| find(&mut parent, r) == find(&mut parent, v))
            {
                continue;
            }
            let mut matched = false;
            for &r in &reps {
                let mut search = AutomorphismSearch {
                    graph,
                    colors: &colors,
                    order: anchored_order(graph, r),
                    steps: &mut steps,
                };
                match search.run(r, v) {
                    AutomorphismOutcome::Found(perm) => {
                        if is_automorphism(graph, &perm) {
                            for (u, &img) in perm.iter().enumerate() {
                                let (a, b) = (find(&mut parent, u), find(&mut parent, img));
                                if a != b {
                                    parent[a.max(b)] = a.min(b);
                                }
                            }
                            generators.push(perm);
                            matched = true;
                            break;
                        }
                        // A verification failure would be a search bug;
                        // treat the pair as unrelated rather than merge.
                        debug_assert!(false, "unverified automorphism candidate");
                    }
                    AutomorphismOutcome::NotFound => {}
                    AutomorphismOutcome::Exhausted => {
                        complete = false;
                        break 'cells;
                    }
                }
            }
            if !matched {
                reps.push(v);
            }
        }
    }

    // Dense orbit ids in order of first appearance by node index.
    let mut dense: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut orbit_ids = Vec::with_capacity(n);
    for v in 0..n {
        let root = find(&mut parent, v);
        let next = dense.len();
        orbit_ids.push(*dense.entry(root).or_insert(next));
    }
    Automorphisms {
        generators,
        orbits: orbit_ids,
        complete,
    }
}

fn distinct(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    /// Relabels a graph through the permutation `perm` (`perm[old] = new`).
    fn relabel(graph: &Graph, perm: &[usize]) -> Graph {
        let edges: Vec<(usize, usize, f64)> = graph
            .edges()
            .map(|(a, b, w)| (perm[a.index()], perm[b.index()], w))
            .collect();
        Graph::from_weighted_edges(graph.node_count(), edges).expect("relabel")
    }

    #[test]
    fn fingerprint_invariant_under_relabeling() {
        for graph in [
            generate::chain(9),
            generate::ring(12),
            generate::grid(3, 4),
            generate::star(7),
        ] {
            let n = graph.node_count();
            let base = fingerprint(&graph);
            // A fixed non-trivial permutation plus a rotation.
            let reversed: Vec<usize> = (0..n).rev().collect();
            let rotated: Vec<usize> = (0..n).map(|i| (i + 3) % n).collect();
            for perm in [reversed, rotated] {
                assert_eq!(fingerprint(&relabel(&graph, &perm)), base);
            }
        }
    }

    #[test]
    fn near_misses_have_distinct_fingerprints() {
        let chain = generate::chain(8);
        let ring = generate::ring(8);
        assert_ne!(fingerprint(&chain), fingerprint(&ring));
        // One added edge changes the certificate.
        let mut plus = chain.clone();
        plus.add_edge(NodeId::new(0), NodeId::new(4), 1.0).unwrap();
        assert_ne!(fingerprint(&chain), fingerprint(&plus));
        // Different weights on the same topology are different problems.
        let light = Graph::from_weighted_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let heavy = Graph::from_weighted_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        assert_ne!(fingerprint(&light), fingerprint(&heavy));
    }

    #[test]
    fn orbit_partition_matches_symmetry() {
        // A chain of 5 has 3 orbits: ends, their neighbours, the centre.
        let orbit_ids = orbits(&generate::chain(5));
        assert_eq!(
            distinct(&orbit_ids.iter().map(|&o| o as u64).collect::<Vec<_>>()),
            3
        );
        assert_eq!(orbit_ids[0], orbit_ids[4]);
        assert_eq!(orbit_ids[1], orbit_ids[3]);
        // Rings and complete graphs are vertex-transitive: one orbit.
        assert_eq!(orbits(&generate::ring(6)), vec![0; 6]);
        // A star has two orbits: hub and leaves.
        let star = orbits(&generate::star(5));
        assert_eq!(star.iter().filter(|&&o| o != star[0]).count(), 5 - 1);
    }

    #[test]
    fn canonical_order_is_a_permutation() {
        let graph = generate::grid(3, 3);
        let form = canonical_form(&graph);
        let mut seen = [false; 9];
        for v in &form.order {
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
        assert!(form.orbit_count >= 1);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = Graph::new(0);
        let one = Graph::new(1);
        assert_ne!(fingerprint(&empty), fingerprint(&one));
        assert_eq!(canonical_form(&empty).order.len(), 0);
        assert_eq!(canonical_form(&one).order.len(), 1);
    }

    /// Disjoint union of `k` rings of `len` nodes: every node is in one
    /// WL cell, but individualization must fix each ring separately, so
    /// the leaf count grows as a product over rings — the classic way
    /// to blow [`LEAF_BUDGET`].
    fn ring_union(k: usize, len: usize) -> Graph {
        let mut edges = Vec::new();
        for r in 0..k {
            let base = r * len;
            for i in 0..len {
                edges.push((base + i, base + (i + 1) % len, 1.0));
            }
        }
        Graph::from_weighted_edges(k * len, edges).expect("ring union")
    }

    #[test]
    fn ordinary_graphs_do_not_exhaust_the_leaf_budget() {
        for graph in [
            generate::chain(9),
            generate::ring(12),
            generate::grid(4, 4),
            generate::star(7),
        ] {
            assert!(!canonical_form(&graph).exhausted);
        }
    }

    #[test]
    fn ring_union_exhausts_the_leaf_budget() {
        let graph = ring_union(3, 8);
        let form = canonical_form(&graph);
        assert!(
            form.exhausted,
            "3 disjoint rings of 8 should exceed {LEAF_BUDGET} leaves"
        );
        // The order is still a usable (if non-canonical) permutation.
        assert_eq!(form.order.len(), 24);
    }

    #[test]
    fn automorphisms_of_symmetric_graphs() {
        // Rings are vertex-transitive: one orbit, witnessed.
        let ring = generate::ring(6);
        let auto = automorphisms(&ring);
        assert!(auto.complete);
        assert_eq!(auto.orbits, vec![0; 6]);
        assert!(!auto.generators.is_empty());
        for g in &auto.generators {
            assert!(is_automorphism(&ring, g));
        }
        // Chain of 5: ends, inner pair, centre.
        let auto = automorphisms(&generate::chain(5));
        assert!(auto.complete);
        assert_eq!(auto.orbits[0], auto.orbits[4]);
        assert_eq!(auto.orbits[1], auto.orbits[3]);
        let mut ids = auto.orbits.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
        // 3x3 grid: corners, edge-midpoints, centre.
        let auto = automorphisms(&generate::grid(3, 3));
        assert!(auto.complete);
        let mut ids = auto.orbits.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn automorphism_orbits_are_finer_than_wl_cells() {
        // ring(5) + ring(7): one WL cell (all degree-2, same weights),
        // but no automorphism maps across components of different size.
        let mut edges = Vec::new();
        for i in 0..5 {
            edges.push((i, (i + 1) % 5, 1.0));
        }
        for i in 0..7 {
            edges.push((5 + i, 5 + (i + 1) % 7, 1.0));
        }
        let graph = Graph::from_weighted_edges(12, edges).unwrap();
        let wl = orbits(&graph);
        assert!(wl.iter().all(|&o| o == wl[0]), "WL merges the two rings");
        let auto = automorphisms(&graph);
        assert!(auto.complete);
        assert_eq!(auto.orbits[0], auto.orbits[4]);
        assert_eq!(auto.orbits[5], auto.orbits[11]);
        assert_ne!(
            auto.orbits[0], auto.orbits[5],
            "true orbits split by component"
        );
        for g in &auto.generators {
            assert!(is_automorphism(&graph, g));
        }
    }

    #[test]
    fn automorphisms_respect_distinct_weights() {
        // Distinct edge weights kill all symmetry: every orbit is a
        // singleton and there are no generators.
        let graph = Graph::from_weighted_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]).unwrap();
        let auto = automorphisms(&graph);
        assert!(auto.complete);
        assert!(auto.generators.is_empty());
        let mut ids = auto.orbits.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn fingerprint_display_is_hex() {
        let fp = fingerprint(&generate::chain(3));
        assert_eq!(fp.to_string().len(), 32);
        assert_eq!(fp.fold64(), fp.fold64());
    }
}
