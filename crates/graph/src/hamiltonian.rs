//! Hamiltonian-cycle search.
//!
//! §4 of the paper reduces the Hamiltonian-cycle problem to quantum circuit
//! placement, establishing NP-completeness. This module provides an exact
//! backtracking solver so tests can confirm the reduction: the crafted
//! placement instance has a zero-runtime solution **iff** the source graph
//! has a Hamiltonian cycle.

use crate::{Graph, NodeId};

/// Returns a Hamiltonian cycle as a node sequence (each node exactly once;
/// an edge joins consecutive nodes and the last back to the first), or
/// `None` if no such cycle exists.
///
/// Exponential-time backtracking with degree and connectivity pruning —
/// intended for the small instances used to validate the §4 reduction.
///
/// Conventions: the empty graph and `K1` have no Hamiltonian cycle (a cycle
/// needs at least 3 nodes).
pub fn find_hamiltonian_cycle(graph: &Graph) -> Option<Vec<NodeId>> {
    let n = graph.node_count();
    if n < 3 {
        return None;
    }
    // Necessary conditions: connected, min degree >= 2.
    if graph.nodes().any(|v| graph.degree(v) < 2) {
        return None;
    }
    if !crate::traversal::is_connected(graph) {
        return None;
    }
    let start = NodeId::new(0);
    let mut path = vec![start];
    let mut used = vec![false; n];
    used[0] = true;
    if extend(graph, &mut path, &mut used, n) {
        Some(path)
    } else {
        None
    }
}

/// Returns `true` iff the graph has a Hamiltonian cycle.
pub fn has_hamiltonian_cycle(graph: &Graph) -> bool {
    find_hamiltonian_cycle(graph).is_some()
}

fn extend(graph: &Graph, path: &mut Vec<NodeId>, used: &mut [bool], n: usize) -> bool {
    // `path` always carries at least the start node.
    let last = path[path.len() - 1];
    if path.len() == n {
        return graph.has_edge(last, path[0]);
    }
    // Deterministic candidate order.
    let mut cands: Vec<NodeId> = graph.neighbors(last).filter(|v| !used[v.index()]).collect();
    cands.sort_unstable();
    for v in cands {
        // Prune: if an unused node (other than v) has fewer than 2 unused-or-
        // endpoint neighbours, no Hamiltonian extension can pass through it.
        used[v.index()] = true;
        path.push(v);
        let feasible = path.len() == n || degrees_feasible(graph, used, path[0], v);
        if feasible && extend(graph, path, used, n) {
            return true;
        }
        path.pop();
        used[v.index()] = false;
    }
    false
}

/// Cheap feasibility filter: every unused node needs at least two
/// connections into the set of unused nodes or the two path endpoints.
fn degrees_feasible(graph: &Graph, used: &[bool], start: NodeId, tail: NodeId) -> bool {
    for v in graph.nodes() {
        if used[v.index()] {
            continue;
        }
        let mut free = 0;
        for u in graph.neighbors(v) {
            if !used[u.index()] || u == start || u == tail {
                free += 1;
                if free >= 2 {
                    break;
                }
            }
        }
        if free < 2 {
            return false;
        }
    }
    true
}

/// Validates a proposed Hamiltonian cycle for `graph`.
pub fn is_hamiltonian_cycle(graph: &Graph, cycle: &[NodeId]) -> bool {
    let n = graph.node_count();
    if cycle.len() != n || n < 3 {
        return false;
    }
    let mut seen = vec![false; n];
    for &v in cycle {
        if v.index() >= n || seen[v.index()] {
            return false;
        }
        seen[v.index()] = true;
    }
    (0..n).all(|i| graph.has_edge(cycle[i], cycle[(i + 1) % n]))
}

/// The Petersen graph: the canonical *non*-Hamiltonian 3-regular graph,
/// used as a negative test case for the §4 reduction.
pub fn petersen() -> Graph {
    // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i—i+5.
    let edges = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 0),
        (5, 7),
        (7, 9),
        (9, 6),
        (6, 8),
        (8, 5),
        (0, 5),
        (1, 6),
        (2, 7),
        (3, 8),
        (4, 9),
    ];
    #[allow(clippy::expect_used)]
    let petersen =
        Graph::from_edges(10, edges).expect("invariant: the Petersen edge list is valid");
    petersen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn ring_is_hamiltonian() {
        for n in 3..9 {
            let g = generate::ring(n);
            let c = find_hamiltonian_cycle(&g).expect("ring has a cycle");
            assert!(is_hamiltonian_cycle(&g, &c));
        }
    }

    #[test]
    fn chain_is_not_hamiltonian() {
        assert!(!has_hamiltonian_cycle(&generate::chain(5)));
    }

    #[test]
    fn complete_graphs_are_hamiltonian() {
        for n in 3..8 {
            let g = generate::complete(n);
            let c = find_hamiltonian_cycle(&g).unwrap();
            assert!(is_hamiltonian_cycle(&g, &c));
        }
    }

    #[test]
    fn star_is_not_hamiltonian() {
        assert!(!has_hamiltonian_cycle(&generate::star(5)));
    }

    #[test]
    fn petersen_is_not_hamiltonian() {
        let g = petersen();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert!(!has_hamiltonian_cycle(&g));
    }

    #[test]
    fn petersen_plus_edge_structure_still_not_hamiltonian() {
        // Petersen is hypohamiltonian: deleting any vertex yields a
        // Hamiltonian graph. Check one deletion.
        let g = petersen();
        let keep: Vec<NodeId> = g.nodes().filter(|v| v.index() != 0).collect();
        let (sub, _) = g.induced(&keep).unwrap();
        // sub has 9 nodes; find a Hamiltonian cycle there.
        assert!(has_hamiltonian_cycle(&sub));
    }

    #[test]
    fn grid_2xn_is_hamiltonian() {
        let g = generate::grid(2, 5);
        assert!(has_hamiltonian_cycle(&g));
    }

    #[test]
    fn grid_3x3_is_not_hamiltonian() {
        // Odd bipartite imbalance: a 3x3 grid has 5+4 colour classes, so no
        // Hamiltonian cycle exists.
        assert!(!has_hamiltonian_cycle(&generate::grid(3, 3)));
    }

    #[test]
    fn tiny_graphs() {
        assert!(!has_hamiltonian_cycle(&Graph::new(0)));
        assert!(!has_hamiltonian_cycle(&Graph::new(1)));
        assert!(!has_hamiltonian_cycle(&generate::chain(2)));
        assert!(has_hamiltonian_cycle(&generate::ring(3)));
    }

    #[test]
    fn validator_rejects_garbage() {
        let g = generate::ring(4);
        let n = |i| NodeId::new(i);
        assert!(!is_hamiltonian_cycle(&g, &[n(0), n(1), n(2)])); // too short
        assert!(!is_hamiltonian_cycle(&g, &[n(0), n(1), n(1), n(2)])); // repeat
        assert!(!is_hamiltonian_cycle(&g, &[n(0), n(2), n(1), n(3)])); // non-edges
        assert!(is_hamiltonian_cycle(&g, &[n(0), n(1), n(2), n(3)]));
    }
}
