//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use qcp_graph::bisection::{balanced_connected_bisection, worst_recursive_ratio};
use qcp_graph::hamiltonian::{find_hamiltonian_cycle, is_hamiltonian_cycle};
use qcp_graph::traversal::{bfs_distances, connected_components, is_connected, shortest_path};
use qcp_graph::vf2::{is_monomorphism, MonomorphismFinder};
use qcp_graph::{generate, Graph, NodeId};

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n, 0usize..=12, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generate::random_connected(n, extra, &mut rng)
    })
}

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (1usize..=max_n, 0.0f64..1.0, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generate::gnp(n, p, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn components_partition(g in arb_graph(14)) {
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.node_count());
        let mut seen = vec![false; g.node_count()];
        for comp in &comps {
            for &v in comp {
                prop_assert!(!seen[v.index()]);
                seen[v.index()] = true;
            }
            // Every component is internally connected.
            let (sub, _) = g.induced(comp).unwrap();
            prop_assert!(is_connected(&sub));
        }
        // No edges between components.
        for (a, b, _) in g.edges() {
            let ca = comps.iter().position(|c| c.contains(&a));
            let cb = comps.iter().position(|c| c.contains(&b));
            prop_assert_eq!(ca, cb);
        }
    }

    #[test]
    fn bfs_distance_triangle_inequality(g in arb_connected_graph(12)) {
        let d0 = bfs_distances(&g, NodeId::new(0));
        for (a, b, _) in g.edges() {
            let da = d0[a.index()].unwrap() as i64;
            let db = d0[b.index()].unwrap() as i64;
            prop_assert!((da - db).abs() <= 1, "edge endpoints differ by more than 1");
        }
    }

    #[test]
    fn shortest_path_is_shortest(g in arb_connected_graph(10)) {
        let d = bfs_distances(&g, NodeId::new(0));
        for v in g.nodes() {
            let p = shortest_path(&g, NodeId::new(0), v).unwrap();
            prop_assert_eq!(p.len() as u32 - 1, d[v.index()].unwrap());
            for w in p.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn bisection_halves_are_connected_and_balanced(g in arb_connected_graph(16)) {
        let b = balanced_connected_bisection(&g).unwrap();
        prop_assert_eq!(b.left.len() + b.right.len(), g.node_count());
        prop_assert!(!b.channel.is_empty());
        for half in [&b.left, &b.right] {
            let (sub, _) = g.induced(half).unwrap();
            prop_assert!(is_connected(&sub));
        }
        // Theorem 1: ratio >= 1/max_degree (up to floor effects for tiny n).
        let k = g.max_degree() as f64;
        let bound = ((g.node_count() as f64 - 1.0) / k).floor().max(1.0);
        prop_assert!(b.left.len() as f64 >= bound - 1e-9,
            "left={} bound={} k={}", b.left.len(), bound, k);
    }

    #[test]
    fn recursive_separability_bounded_degree(seed in any::<u64>(), n in 4usize..24, k in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::bounded_degree_tree(n, k, &mut rng);
        let s = worst_recursive_ratio(&g).unwrap();
        // Theorem 1 guarantees s >= 1/k asymptotically; small graphs can
        // only do integer splits, so allow the floor-induced slack.
        prop_assert!(s > 0.0);
        prop_assert!(s >= 1.0 / (n as f64), "degenerate separability {s}");
    }

    #[test]
    fn vf2_maps_are_valid(seed in any::<u64>(), pn in 2usize..5, tn in 5usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = generate::random_tree(pn, &mut rng);
        let t = generate::random_connected(tn, 4, &mut rng);
        for m in MonomorphismFinder::new(&p, &t).limit(50).find_all() {
            prop_assert!(is_monomorphism(&p, &t, &m));
        }
    }

    #[test]
    fn vf2_self_embedding_always_exists(g in arb_connected_graph(10)) {
        prop_assert!(MonomorphismFinder::new(&g, &g).exists());
    }

    #[test]
    fn vf2_subchain_embeds_into_chain(n in 2usize..10, m in 10usize..14) {
        let p = generate::chain(n);
        let t = generate::chain(m);
        // Exactly 2 * (m - n + 1) embeddings of a path into a longer path.
        prop_assert_eq!(MonomorphismFinder::new(&p, &t).count(), 2 * (m - n + 1));
    }

    #[test]
    fn hamiltonian_cycles_are_valid(g in arb_connected_graph(9)) {
        if let Some(c) = find_hamiltonian_cycle(&g) {
            prop_assert!(is_hamiltonian_cycle(&g, &c));
        }
    }

    #[test]
    fn ring_plus_chords_stays_hamiltonian(n in 4usize..9, seed in any::<u64>()) {
        // Start from a ring (Hamiltonian by construction) and add chords;
        // the solver must still find a cycle.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = generate::ring(n);
        for _ in 0..n {
            let a = rand::Rng::gen_range(&mut rng, 0..n);
            let b = rand::Rng::gen_range(&mut rng, 0..n);
            if a != b && !g.has_edge(NodeId::new(a), NodeId::new(b)) {
                g.add_edge(NodeId::new(a), NodeId::new(b), 1.0).unwrap();
            }
        }
        let c = find_hamiltonian_cycle(&g);
        prop_assert!(c.is_some());
        prop_assert!(is_hamiltonian_cycle(&g, &c.unwrap()));
    }

    #[test]
    fn induced_preserves_adjacency(g in arb_graph(12), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let keep: Vec<NodeId> = g
            .nodes()
            .filter(|_| rand::Rng::gen_bool(&mut rng, 0.6))
            .collect();
        let (sub, back) = g.induced(&keep).unwrap();
        for i in 0..sub.node_count() {
            for j in i + 1..sub.node_count() {
                prop_assert_eq!(
                    sub.has_edge(NodeId::new(i), NodeId::new(j)),
                    g.has_edge(back[i], back[j])
                );
            }
        }
    }
}
