#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use qcp_graph::bisection::{balanced_connected_bisection, worst_recursive_ratio};
use qcp_graph::hamiltonian::{find_hamiltonian_cycle, is_hamiltonian_cycle};
use qcp_graph::traversal::{bfs_distances, connected_components, is_connected, shortest_path};
use qcp_graph::vf2::{is_monomorphism, MonomorphismFinder};
use qcp_graph::{canonical, generate, Graph, NodeId};

/// Naive adjacency model the CSR + bitset [`Graph`] must agree with.
struct NaiveGraph {
    n: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl NaiveGraph {
    fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edges
            .iter()
            .any(|&(x, y, _)| (x, y) == (a, b) || (x, y) == (b, a))
    }

    fn weight(&self, a: usize, b: usize) -> Option<f64> {
        self.edges
            .iter()
            .find(|&&(x, y, _)| (x, y) == (a, b) || (x, y) == (b, a))
            .map(|&(_, _, w)| w)
    }

    fn neighbors(&self, v: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .edges
            .iter()
            .filter_map(|&(x, y, _)| {
                if x == v {
                    Some(y)
                } else if y == v {
                    Some(x)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }
}

fn arb_weighted_edges(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..=max_n, 0.0f64..1.0, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if rand::Rng::gen_bool(&mut rng, p) {
                    edges.push((i, j, rand::Rng::gen_range(&mut rng, 0.0..100.0)));
                }
            }
        }
        (n, edges)
    })
}

/// The pre-refactor VF2 (per-depth candidate collect-and-sort over
/// neighbour iterators, no look-ahead), kept as an oracle for both the
/// solution *set* and the enumeration *order* of the bitset search.
mod oracle {
    use qcp_graph::{Graph, NodeId};

    fn variable_order(pattern: &Graph) -> Vec<NodeId> {
        let pn = pattern.node_count();
        let mut ordered = Vec::with_capacity(pn);
        let mut placed = vec![false; pn];
        let mut anchored = vec![0usize; pn];
        for _ in 0..pn {
            let next = (0..pn)
                .filter(|&i| !placed[i])
                .max_by_key(|&i| {
                    (
                        anchored[i],
                        pattern.degree(NodeId::new(i)),
                        std::cmp::Reverse(i),
                    )
                })
                .expect("an unplaced node exists");
            placed[next] = true;
            ordered.push(NodeId::new(next));
            for u in pattern.neighbors(NodeId::new(next)) {
                anchored[u.index()] += 1;
            }
        }
        ordered
    }

    #[allow(clippy::too_many_arguments)]
    fn extend(
        pattern: &Graph,
        target: &Graph,
        order: &[NodeId],
        mapping: &mut Vec<u32>,
        used: &mut Vec<bool>,
        depth: usize,
        limit: usize,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if out.len() >= limit {
            return;
        }
        if depth == order.len() {
            out.push(
                mapping
                    .iter()
                    .map(|&t| NodeId::new(t as usize))
                    .collect::<Vec<_>>(),
            );
            return;
        }
        let p = order[depth];
        let pdeg = pattern.degree(p);
        let mapped_neighbor = pattern
            .neighbors(p)
            .filter(|u| mapping[u.index()] != u32::MAX)
            .min_by_key(|u| target.degree(NodeId::new(mapping[u.index()] as usize)));
        let candidates: Vec<NodeId> = match mapped_neighbor {
            Some(u) => {
                let img = NodeId::new(mapping[u.index()] as usize);
                let mut c: Vec<NodeId> =
                    target.neighbors(img).filter(|w| !used[w.index()]).collect();
                c.sort_unstable();
                c
            }
            None => target.nodes().filter(|w| !used[w.index()]).collect(),
        };
        for w in candidates {
            if target.degree(w) < pdeg {
                continue;
            }
            let consistent = pattern.neighbors(p).all(|u| {
                let img = mapping[u.index()];
                img == u32::MAX || target.has_edge(NodeId::new(img as usize), w)
            });
            if !consistent {
                continue;
            }
            mapping[p.index()] = w.index() as u32;
            used[w.index()] = true;
            extend(pattern, target, order, mapping, used, depth + 1, limit, out);
            used[w.index()] = false;
            mapping[p.index()] = u32::MAX;
            if out.len() >= limit {
                return;
            }
        }
    }

    /// Enumerates up to `limit` monomorphisms in pre-refactor order.
    pub fn find_all(pattern: &Graph, target: &Graph, limit: usize) -> Vec<Vec<NodeId>> {
        let pn = pattern.node_count();
        let tn = target.node_count();
        let mut out = Vec::new();
        if pn > tn {
            return out;
        }
        if pn == 0 {
            out.push(Vec::new());
            return out;
        }
        let order = variable_order(pattern);
        let mut mapping = vec![u32::MAX; pn];
        let mut used = vec![false; tn];
        extend(
            pattern,
            target,
            &order,
            &mut mapping,
            &mut used,
            0,
            limit,
            &mut out,
        );
        out
    }
}

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n, 0usize..=12, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generate::random_connected(n, extra, &mut rng)
    })
}

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (1usize..=max_n, 0.0f64..1.0, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generate::gnp(n, p, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn components_partition(g in arb_graph(14)) {
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.node_count());
        let mut seen = vec![false; g.node_count()];
        for comp in &comps {
            for &v in comp {
                prop_assert!(!seen[v.index()]);
                seen[v.index()] = true;
            }
            // Every component is internally connected.
            let (sub, _) = g.induced(comp).unwrap();
            prop_assert!(is_connected(&sub));
        }
        // No edges between components.
        for (a, b, _) in g.edges() {
            let ca = comps.iter().position(|c| c.contains(&a));
            let cb = comps.iter().position(|c| c.contains(&b));
            prop_assert_eq!(ca, cb);
        }
    }

    #[test]
    fn bfs_distance_triangle_inequality(g in arb_connected_graph(12)) {
        let d0 = bfs_distances(&g, NodeId::new(0));
        for (a, b, _) in g.edges() {
            let da = d0[a.index()].unwrap() as i64;
            let db = d0[b.index()].unwrap() as i64;
            prop_assert!((da - db).abs() <= 1, "edge endpoints differ by more than 1");
        }
    }

    #[test]
    fn shortest_path_is_shortest(g in arb_connected_graph(10)) {
        let d = bfs_distances(&g, NodeId::new(0));
        for v in g.nodes() {
            let p = shortest_path(&g, NodeId::new(0), v).unwrap();
            prop_assert_eq!(p.len() as u32 - 1, d[v.index()].unwrap());
            for w in p.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn bisection_halves_are_connected_and_balanced(g in arb_connected_graph(16)) {
        let b = balanced_connected_bisection(&g).unwrap();
        prop_assert_eq!(b.left.len() + b.right.len(), g.node_count());
        prop_assert!(!b.channel.is_empty());
        for half in [&b.left, &b.right] {
            let (sub, _) = g.induced(half).unwrap();
            prop_assert!(is_connected(&sub));
        }
        // Theorem 1: ratio >= 1/max_degree (up to floor effects for tiny n).
        let k = g.max_degree() as f64;
        let bound = ((g.node_count() as f64 - 1.0) / k).floor().max(1.0);
        prop_assert!(b.left.len() as f64 >= bound - 1e-9,
            "left={} bound={} k={}", b.left.len(), bound, k);
    }

    #[test]
    fn recursive_separability_bounded_degree(seed in any::<u64>(), n in 4usize..24, k in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::bounded_degree_tree(n, k, &mut rng);
        let s = worst_recursive_ratio(&g).unwrap();
        // Theorem 1 guarantees s >= 1/k asymptotically; small graphs can
        // only do integer splits, so allow the floor-induced slack.
        prop_assert!(s > 0.0);
        prop_assert!(s >= 1.0 / (n as f64), "degenerate separability {s}");
    }

    #[test]
    fn vf2_maps_are_valid(seed in any::<u64>(), pn in 2usize..5, tn in 5usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = generate::random_tree(pn, &mut rng);
        let t = generate::random_connected(tn, 4, &mut rng);
        for m in MonomorphismFinder::new(&p, &t).limit(50).find_all() {
            prop_assert!(is_monomorphism(&p, &t, &m));
        }
    }

    #[test]
    fn vf2_self_embedding_always_exists(g in arb_connected_graph(10)) {
        prop_assert!(MonomorphismFinder::new(&g, &g).exists());
    }

    #[test]
    fn vf2_subchain_embeds_into_chain(n in 2usize..10, m in 10usize..14) {
        let p = generate::chain(n);
        let t = generate::chain(m);
        // Exactly 2 * (m - n + 1) embeddings of a path into a longer path.
        prop_assert_eq!(MonomorphismFinder::new(&p, &t).count(), 2 * (m - n + 1));
    }

    #[test]
    fn hamiltonian_cycles_are_valid(g in arb_connected_graph(9)) {
        if let Some(c) = find_hamiltonian_cycle(&g) {
            prop_assert!(is_hamiltonian_cycle(&g, &c));
        }
    }

    #[test]
    fn ring_plus_chords_stays_hamiltonian(n in 4usize..9, seed in any::<u64>()) {
        // Start from a ring (Hamiltonian by construction) and add chords;
        // the solver must still find a cycle.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = generate::ring(n);
        for _ in 0..n {
            let a = rand::Rng::gen_range(&mut rng, 0..n);
            let b = rand::Rng::gen_range(&mut rng, 0..n);
            if a != b && !g.has_edge(NodeId::new(a), NodeId::new(b)) {
                g.add_edge(NodeId::new(a), NodeId::new(b), 1.0).unwrap();
            }
        }
        let c = find_hamiltonian_cycle(&g);
        prop_assert!(c.is_some());
        prop_assert!(is_hamiltonian_cycle(&g, &c.unwrap()));
    }

    #[test]
    fn csr_bitset_agrees_with_naive_model((n, edges) in arb_weighted_edges(20)) {
        let naive = NaiveGraph { n, edges: edges.clone() };
        let g = Graph::from_weighted_edges(n, edges).unwrap();
        prop_assert_eq!(g.node_count(), naive.n);
        prop_assert_eq!(g.edge_count(), naive.edges.len());
        for a in 0..n {
            let nb: Vec<usize> = g.neighbors(NodeId::new(a)).map(NodeId::index).collect();
            prop_assert_eq!(&nb, &naive.neighbors(a), "neighbors of {}", a);
            prop_assert_eq!(g.degree(NodeId::new(a)), nb.len());
            for b in 0..n {
                prop_assert_eq!(
                    g.has_edge(NodeId::new(a), NodeId::new(b)),
                    naive.has_edge(a, b) && a != b,
                    "has_edge({}, {})", a, b
                );
                prop_assert_eq!(g.weight(NodeId::new(a), NodeId::new(b)),
                    if a == b { None } else { naive.weight(a, b) });
            }
        }
        // edges() yields each edge once, lexicographically, with weights.
        let listed: Vec<(usize, usize)> =
            g.edges().map(|(a, b, _)| (a.index(), b.index())).collect();
        let mut expect: Vec<(usize, usize)> = naive
            .edges
            .iter()
            .map(|&(a, b, _)| (a.min(b), a.max(b)))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(listed, expect);
        for (a, b, w) in g.edges() {
            prop_assert_eq!(naive.weight(a.index(), b.index()), Some(w));
        }
    }

    #[test]
    fn incremental_build_matches_bulk((n, edges) in arb_weighted_edges(16)) {
        // add_edge-by-add_edge (in a scrambled order) must produce the
        // same graph as the bulk constructor.
        let bulk = Graph::from_weighted_edges(n, edges.clone()).unwrap();
        let mut shuffled = edges;
        shuffled.reverse();
        let mut inc = Graph::new(n);
        for (a, b, w) in shuffled {
            inc.add_edge(NodeId::new(a), NodeId::new(b), w).unwrap();
        }
        prop_assert_eq!(inc.edge_count(), bulk.edge_count());
        for v in 0..n {
            let a: Vec<NodeId> = inc.neighbors(NodeId::new(v)).collect();
            let b: Vec<NodeId> = bulk.neighbors(NodeId::new(v)).collect();
            prop_assert_eq!(a, b, "row {}", v);
        }
    }

    #[test]
    fn vf2_matches_pre_refactor_oracle_exactly(
        seed in any::<u64>(),
        pn in 1usize..=8,
        tn in 4usize..12,
        pp in 0.2f64..0.9,
        tp in 0.3f64..0.9,
        limit in 1usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = generate::gnp(pn, pp, &mut rng);
        let t = generate::gnp(tn, tp, &mut rng);
        // Both the solution set AND the enumeration order must match the
        // pre-refactor search (Table 3 depends on find_first stability).
        let expect = oracle::find_all(&p, &t, limit);
        let got = MonomorphismFinder::new(&p, &t).limit(limit).find_all();
        prop_assert_eq!(&got, &expect, "pattern {:?} target {:?}", p, t);
        prop_assert_eq!(MonomorphismFinder::new(&p, &t).limit(limit).count(), expect.len());
        for m in &got {
            prop_assert!(is_monomorphism(&p, &t, m));
        }
    }

    #[test]
    fn vf2_matches_oracle_on_multiword_targets(
        seed in any::<u64>(),
        pn in 1usize..=6,
        tn in 65usize..96,
        pp in 0.2f64..0.9,
        tp in 0.15f64..0.5,
        limit in 1usize..40,
    ) {
        // Targets above 64 nodes take the general word-parallel kernel
        // (per-depth candidate stack) instead of the single-word fast
        // path; it must match the pre-refactor enumeration bit-for-bit
        // too.
        let mut rng = StdRng::seed_from_u64(seed);
        let p = generate::gnp(pn, pp, &mut rng);
        let t = generate::gnp(tn, tp, &mut rng);
        let expect = oracle::find_all(&p, &t, limit);
        let got = MonomorphismFinder::new(&p, &t).limit(limit).find_all();
        prop_assert_eq!(&got, &expect, "pattern {:?} target {:?}", p, t);
        for m in &got {
            prop_assert!(is_monomorphism(&p, &t, m));
        }
    }

    #[test]
    fn vf2_count_matches_brute_force(
        seed in any::<u64>(),
        pn in 1usize..=5,
        tn in 4usize..9,
        pp in 0.2f64..0.9,
        tp in 0.3f64..0.9,
    ) {
        fn brute(p: &Graph, t: &Graph, map: &mut Vec<Option<NodeId>>, used: &mut Vec<bool>, i: usize) -> usize {
            if i == p.node_count() {
                return 1;
            }
            let mut total = 0;
            for w in t.nodes() {
                if used[w.index()] {
                    continue;
                }
                let ok = p.neighbors(NodeId::new(i)).all(|u| match map[u.index()] {
                    Some(img) => t.has_edge(img, w),
                    None => true,
                });
                if ok {
                    map[i] = Some(w);
                    used[w.index()] = true;
                    total += brute(p, t, map, used, i + 1);
                    used[w.index()] = false;
                    map[i] = None;
                }
            }
            total
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let p = generate::gnp(pn, pp, &mut rng);
        let t = generate::gnp(tn, tp, &mut rng);
        let mut map = vec![None; p.node_count()];
        let mut used = vec![false; t.node_count()];
        prop_assert_eq!(
            MonomorphismFinder::new(&p, &t).count(),
            brute(&p, &t, &mut map, &mut used, 0),
            "pattern {:?} target {:?}", p, t
        );
    }

    #[test]
    fn vf2_large_target_kernel_agrees_with_small(
        seed in any::<u64>(),
        pn in 2usize..=6,
    ) {
        // A >64-node target exercises the multi-word kernel; embedding the
        // same pattern into the first 60 nodes' induced subgraph (same
        // edges) exercises the single-word kernel. A pattern that only
        // fits in the low-index region must enumerate identically.
        let mut rng = StdRng::seed_from_u64(seed);
        let p = generate::random_tree(pn, &mut rng);
        let big = generate::chain(80);
        let small = generate::chain(60);
        let from_big: Vec<_> = MonomorphismFinder::new(&p, &big)
            .limit(40)
            .find_all()
            .into_iter()
            .filter(|m| m.iter().all(|v| v.index() < 60))
            .collect();
        let from_small = MonomorphismFinder::new(&p, &small).limit(40).find_all();
        // Every small-kernel solution appears in the big-kernel stream
        // (possibly truncated differently by the limit); compare prefixes.
        let common = from_big.len().min(from_small.len());
        prop_assert_eq!(&from_big[..common], &from_small[..common]);
    }

    #[test]
    fn vf2_budgeted_search_is_a_prefix_and_never_panics(
        seed in any::<u64>(),
        pn in 2usize..=5,
        cap in 0u64..400,
    ) {
        use qcp_graph::vf2::{Budget, Outcome};
        let mut rng = StdRng::seed_from_u64(seed);
        let p = generate::random_tree(pn, &mut rng);
        let t = generate::random_connected(9, 4, &mut rng);
        let all = MonomorphismFinder::new(&p, &t).find_all();
        let mut budget = Budget::max_nodes(cap);
        let mut got: Vec<Vec<NodeId>> = Vec::new();
        let run = MonomorphismFinder::new(&p, &t).for_each_budgeted(&mut budget, &mut |m| {
            got.push(m.to_vec());
            std::ops::ControlFlow::Continue(())
        });
        // The budget removes a suffix of the enumeration, never reorders.
        prop_assert_eq!(&got[..], &all[..got.len()]);
        prop_assert!(run.nodes <= cap);
        match run.outcome {
            Outcome::Complete => prop_assert_eq!(got.len(), all.len()),
            Outcome::BudgetExhausted => {
                prop_assert!(budget.is_exhausted());
                // Any recorded partial is injective and edge-preserving.
                let mut used = std::collections::HashSet::new();
                for &(pv, tv) in &run.best_partial {
                    prop_assert!(used.insert(tv));
                    prop_assert!(pv.index() < p.node_count());
                    prop_assert!(tv.index() < t.node_count());
                }
                for &(a, ta) in &run.best_partial {
                    for &(b, tb) in &run.best_partial {
                        if p.has_edge(a, b) {
                            prop_assert!(t.has_edge(ta, tb));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn induced_preserves_adjacency(g in arb_graph(12), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let keep: Vec<NodeId> = g
            .nodes()
            .filter(|_| rand::Rng::gen_bool(&mut rng, 0.6))
            .collect();
        let (sub, back) = g.induced(&keep).unwrap();
        for i in 0..sub.node_count() {
            for j in i + 1..sub.node_count() {
                prop_assert_eq!(
                    sub.has_edge(NodeId::new(i), NodeId::new(j)),
                    g.has_edge(back[i], back[j])
                );
            }
        }
    }
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
fn random_permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rand::Rng::gen_range(rng, 0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Relabels a graph through `perm` (`perm[old] = new`).
fn relabel(g: &Graph, perm: &[usize]) -> Graph {
    let edges: Vec<(usize, usize, f64)> = g
        .edges()
        .map(|(a, b, w)| (perm[a.index()], perm[b.index()], w))
        .collect();
    Graph::from_weighted_edges(g.node_count(), edges).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // The cache-keying soundness half: isomorphic relabellings can never
    // split a canonical fingerprint, on arbitrary G(n, p) graphs.
    #[test]
    fn canonical_fingerprint_is_relabeling_invariant(g in arb_graph(12), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = canonical::fingerprint(&g);
        for _ in 0..3 {
            let perm = random_permutation(g.node_count(), &mut rng);
            prop_assert_eq!(canonical::fingerprint(&relabel(&g, &perm)), base);
        }
    }

    // The discrimination half: toggling one edge (a near-miss, not an
    // isomorph) must move the fingerprint.
    #[test]
    fn canonical_fingerprint_separates_single_edge_toggles(
        g in arb_graph(10),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = g.node_count();
        if n < 2 {
            return Ok(());
        }
        let a = rand::Rng::gen_range(&mut rng, 0..n);
        let b = (a + 1 + rand::Rng::gen_range(&mut rng, 0..n - 1)) % n;
        let (a, b) = (a.min(b), a.max(b));
        let had = g.has_edge(NodeId::new(a), NodeId::new(b));
        let edges: Vec<(usize, usize, f64)> = if had {
            g.edges()
                .filter(|&(x, y, _)| (x.index(), y.index()) != (a, b) && (y.index(), x.index()) != (a, b))
                .map(|(x, y, w)| (x.index(), y.index(), w))
                .collect()
        } else {
            g.edges()
                .map(|(x, y, w)| (x.index(), y.index(), w))
                .chain(std::iter::once((a, b, 1.0)))
                .collect()
        };
        let toggled = Graph::from_weighted_edges(n, edges).unwrap();
        prop_assert_ne!(
            canonical::fingerprint(&toggled),
            canonical::fingerprint(&g),
            "toggling edge ({a},{b}) (had={had}) left the fingerprint unchanged"
        );
    }

    // Orbit ids are a dense partition labelling (one id per node,
    // contiguous from 0), and relabelling permutes the partition without
    // changing its cell-size multiset.
    #[test]
    fn canonical_orbits_are_dense_and_relabeling_stable(g in arb_graph(12), seed in any::<u64>()) {
        let orbits = canonical::orbits(&g);
        prop_assert_eq!(orbits.len(), g.node_count());
        let mut ids = orbits.clone();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids, (0..ids_len(&orbits)).collect::<Vec<usize>>());

        let mut rng = StdRng::seed_from_u64(seed);
        let perm = random_permutation(g.node_count(), &mut rng);
        let relabelled = canonical::orbits(&relabel(&g, &perm));
        prop_assert_eq!(cell_sizes(&orbits), cell_sizes(&relabelled));
    }
}

/// Number of distinct orbit ids.
fn ids_len(orbits: &[usize]) -> usize {
    let mut ids = orbits.to_vec();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

/// The sorted multiset of orbit-cell sizes.
fn cell_sizes(orbits: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; ids_len(orbits)];
    for &id in orbits {
        counts[id] += 1;
    }
    counts.sort_unstable();
    counts
}
