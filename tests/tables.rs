#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Integration tests pinning the paper's tables (the values our library
//! must reproduce exactly, and the phenomena it must reproduce in shape).

use qcp::prelude::*;
use qcp_circuit::library;
use qcp_place::baselines::{exhaustive_placement, place_whole, search_space_size};
use qcp_place::cost::placed_runtime;
use qcp_place::PlaceError;

fn p(i: usize) -> qcp::env::PhysicalQubit {
    qcp::env::PhysicalQubit::new(i)
}

// -------------------------------------------------------------------
// Table 1 / Example 3 — exact values
// -------------------------------------------------------------------

#[test]
fn table1_example_mapping_costs_770() {
    let env = molecules::acetyl_chloride();
    let placement = Placement::new(vec![p(0), p(2), p(1)], 3).unwrap();
    let t = placed_runtime(
        &library::qec3_encoder(),
        &env,
        &placement,
        &CostModel::overlapped(),
    );
    assert_eq!(t.units(), 770.0);
}

#[test]
fn table1_optimum_is_136_at_c2_c1_m() {
    let env = molecules::acetyl_chloride();
    let (best, t) = exhaustive_placement(
        &library::qec3_encoder(),
        &env,
        &CostModel::overlapped(),
        1e4,
    )
    .unwrap();
    assert_eq!(t.units(), 136.0);
    assert_eq!(best.as_slice(), &[p(2), p(1), p(0)]);
}

// -------------------------------------------------------------------
// Table 2 — single-workspace placements and search-space sizes
// -------------------------------------------------------------------

#[test]
fn table2_search_space_sizes() {
    assert_eq!(search_space_size(3, 3), 6.0);
    assert_eq!(search_space_size(5, 7), 2520.0);
    assert_eq!(search_space_size(10, 12), 239_500_800.0);
}

#[test]
fn table2_rows_use_one_workspace_each() {
    let cases: Vec<(qcp::circuit::Circuit, Environment)> = vec![
        (library::qec3_encoder(), molecules::acetyl_chloride()),
        (library::qec5_benchmark(), molecules::trans_crotonic_acid()),
        (library::pseudo_cat(10), molecules::histidine()),
    ];
    for (circuit, env) in cases {
        let threshold = env.connectivity_threshold().unwrap();
        let placer = Placer::new(&env, PlacerConfig::with_threshold(threshold));
        let outcome = placer.place(&circuit).unwrap();
        assert_eq!(
            outcome.subcircuit_count(),
            1,
            "{} on {} must use a single workspace",
            circuit.qubit_count(),
            env.name()
        );
        assert_eq!(outcome.swap_count(), 0);
    }
}

#[test]
fn table2_qec3_matches_experimentalists() {
    // The tool must find the hand placement: runtime .0136 sec.
    let env = molecules::acetyl_chloride();
    let threshold = env.connectivity_threshold().unwrap();
    let placer = Placer::new(&env, PlacerConfig::with_threshold(threshold));
    let outcome = placer.place(&library::qec3_encoder()).unwrap();
    assert_eq!(outcome.runtime.units(), 136.0);
    assert_eq!(outcome.runtime.to_string(), "0.0136 sec");
}

#[test]
fn table2_qec5_placement_is_exhaustively_optimal() {
    // With one workspace the heuristic should land on (or at) the true
    // optimum for this small instance.
    let env = molecules::trans_crotonic_acid();
    let model = CostModel::overlapped();
    let (_, best) = exhaustive_placement(&library::qec5_benchmark(), &env, &model, 1e5).unwrap();
    let threshold = env.connectivity_threshold().unwrap();
    let placer = Placer::new(
        &env,
        PlacerConfig::with_threshold(threshold)
            .candidates(200)
            .fine_tuning(4),
    );
    let outcome = placer.place(&library::qec5_benchmark()).unwrap();
    assert!(
        outcome.runtime.units() <= best.units() * 1.05,
        "heuristic {} too far from optimum {}",
        outcome.runtime.units(),
        best.units()
    );
}

// -------------------------------------------------------------------
// Table 3 — phenomena
// -------------------------------------------------------------------

#[test]
fn table3_pentafluoro_na_below_200() {
    let env = molecules::pentafluoro_iron();
    let circuit = library::phase_estimation();
    for t in [50.0, 100.0] {
        let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(t)));
        assert_eq!(
            placer.place(&circuit).unwrap_err(),
            PlaceError::NoFastInteractions
        );
    }
    let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(200.0)));
    assert!(placer.place(&circuit).is_ok());
}

#[test]
fn table3_subcircuits_decrease_with_threshold() {
    // Larger thresholds admit more interactions, so the workspace count
    // never increases along the grid (checked for phaseest on crotonic).
    let env = molecules::trans_crotonic_acid();
    let circuit = library::phase_estimation();
    let mut last = usize::MAX;
    for t in [50.0, 100.0, 200.0, 500.0, 1000.0, 10000.0] {
        let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(t)));
        let outcome = placer.place(&circuit).unwrap();
        assert!(
            outcome.subcircuit_count() <= last,
            "threshold {t}: {} subcircuits after {last}",
            outcome.subcircuit_count()
        );
        last = outcome.subcircuit_count();
    }
    assert_eq!(
        last, 1,
        "an unbounded-ish threshold places the circuit whole"
    );
}

#[test]
fn table3_swapping_beats_whole_placement_for_qft6() {
    // The paper's central Table 3 observation: some intermediate
    // threshold (with SWAP stages) beats the optimal whole placement.
    let env = molecules::trans_crotonic_acid();
    let circuit = library::qft(6);
    let model = CostModel::overlapped();
    let (_, whole) = place_whole(&circuit, &env, &model, 1e6).unwrap();
    let mut best_staged = f64::INFINITY;
    for t in [100.0, 200.0, 500.0, 1000.0] {
        let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(t)));
        if let Ok(outcome) = placer.place(&circuit) {
            best_staged = best_staged.min(outcome.runtime.units());
        }
    }
    assert!(
        best_staged < whole.units(),
        "staged {best_staged} must beat whole {}",
        whole.units()
    );
}

#[test]
fn table3_qft6_needs_swaps_on_crotonic_bonds() {
    // §6: qft6 cannot run in a chain sub-architecture of crotonic acid —
    // at bond-level thresholds the placement needs several workspaces.
    let env = molecules::trans_crotonic_acid();
    let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(200.0)));
    let outcome = placer.place(&library::qft(6)).unwrap();
    assert!(outcome.subcircuit_count() > 1);
    assert!(outcome.swap_count() > 0);
}

// -------------------------------------------------------------------
// Table 4 — hidden stages
// -------------------------------------------------------------------

#[test]
fn table4_recovers_hidden_stages() {
    for (n, seed) in [(8usize, 1u64), (16, 2), (32, 3)] {
        let staged = library::random::staged(n, seed);
        let env = molecules::lnn_chain_1khz(n);
        let placer = Placer::new(
            &env,
            PlacerConfig::with_threshold(Threshold::new(11.0))
                .candidates(4)
                .lookahead(false)
                .fine_tuning(0),
        );
        let outcome = placer.place(&staged.circuit).unwrap();
        assert_eq!(
            outcome.subcircuit_count(),
            staged.stage_count(),
            "n={n} seed={seed}"
        );
    }
}

#[test]
fn table4_gate_counts_match_paper() {
    // N, gates, stages from the paper's table.
    for (n, gates, stages) in [
        (8usize, 72usize, 3usize),
        (16, 256, 4),
        (32, 800, 5),
        (64, 2304, 6),
    ] {
        let staged = library::random::staged(n, 9);
        assert_eq!(staged.circuit.gate_count(), gates);
        assert_eq!(staged.stage_count(), stages);
    }
}

#[test]
fn table4_whole_placement_impossible_on_chains() {
    // §6/§7: "considering subcircuits and swapping their mappings is
    // essential" — a multi-stage chain circuit cannot be placed whole:
    // non-neighbour couplings do not exist (infinite delay), so every
    // whole placement has infinite runtime (or the pipeline refuses).
    let staged = library::random::staged(8, 4);
    let env = molecules::lnn_chain_1khz(8);
    match place_whole(&staged.circuit, &env, &CostModel::overlapped(), 1e5) {
        Ok((_, t)) => assert!(t.units().is_infinite(), "whole placement must be unusable"),
        Err(e) => assert!(matches!(
            e,
            PlaceError::RoutingImpossible { .. } | PlaceError::SearchSpaceTooLarge { .. }
        )),
    }
}
