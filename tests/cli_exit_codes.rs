#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Integration tests pinning the CLI exit-code taxonomy (GUIDE.md §9):
//! 0 success, 2 parse/input, 3 budget exhausted, 4 verify reject,
//! 5 internal. Scripts and CI pipelines branch on these numbers, so a
//! change here is a breaking interface change.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qcp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qcp"))
        .args(args)
        .output()
        .expect("run qcp")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("exit code (not a signal)")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch directory seeded with the given `(name, contents)` files;
/// removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn with_files(tag: &str, files: &[(&str, &str)]) -> Self {
        let dir = std::env::temp_dir().join(format!("qcp-exit-codes-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        for (name, contents) in files {
            std::fs::write(dir.join(name), contents).expect("write scratch file");
        }
        ScratchDir(dir)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const GOOD_QASM: &str = "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n";
const BAD_QASM: &str = "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n";
const IDLE_QASM: &str = "OPENQASM 2.0;\nqreg q[3];\ncx q[0],q[1];\n";

#[test]
fn success_is_exit_zero() {
    let out = qcp(&["circuits"]);
    assert_eq!(exit_code(&out), 0, "{}", stderr(&out));
    let out = qcp(&[
        "place",
        "--circuit",
        "qec3",
        "--topology",
        "grid:2x3",
        "--strategy",
        "hybrid",
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stderr(&out));
}

#[test]
fn input_errors_are_exit_two() {
    // Usage error (no subcommand).
    assert_eq!(exit_code(&qcp(&[])), 2);
    // Unknown option.
    assert_eq!(exit_code(&qcp(&["place", "--frobnicate"])), 2);
    // Unknown circuit.
    let out = qcp(&["place", "--circuit", "nope", "--topology", "grid:2x2"]);
    assert_eq!(exit_code(&out), 2, "{}", stderr(&out));
    // Malformed QASM file, with a path:line:col diagnostic.
    let dir = ScratchDir::with_files("badqasm", &[("bad.qasm", BAD_QASM)]);
    let path = format!("{}/bad.qasm", dir.path());
    let out = qcp(&["place", "--qasm", &path, "--topology", "grid:2x2"]);
    assert_eq!(exit_code(&out), 2, "{}", stderr(&out));
    assert!(
        stderr(&out).contains(&format!("{path}:3:1")),
        "no path:line:col diagnostic: {}",
        stderr(&out)
    );
}

#[test]
fn budget_exhaustion_is_exit_three() {
    let out = qcp(&[
        "place",
        "--circuit",
        "qft6",
        "--topology",
        "grid:8x8",
        "--strategy",
        "exact",
        "--budget-ms",
        "1",
    ]);
    assert_eq!(exit_code(&out), 3, "{}", stderr(&out));
    assert!(stderr(&out).contains("budget"), "{}", stderr(&out));
}

#[test]
fn verify_rejection_is_exit_four() {
    let dir = ScratchDir::with_files("lintdeny", &[("idle.qasm", IDLE_QASM)]);
    let path = format!("{}/idle.qasm", dir.path());
    // The idle third qubit is a deterministic lint finding; --deny turns
    // findings into a policy rejection.
    let out = qcp(&["lint", &path, "--deny"]);
    assert_eq!(exit_code(&out), 4, "{}", stderr(&out));
    // Without --deny the same input is merely reported.
    let out = qcp(&["lint", &path]);
    assert_eq!(exit_code(&out), 0, "{}", stderr(&out));
}

#[test]
fn contained_panics_are_exit_five() {
    let out = Command::new(env!("CARGO_BIN_EXE_qcp"))
        .args(["circuits"])
        .env("QCP_CHAOS", "panic")
        .output()
        .expect("run qcp");
    assert_eq!(exit_code(&out), 5, "{}", stderr(&out));
    assert!(stderr(&out).contains("exit 5"), "{}", stderr(&out));
}

#[test]
fn batch_skips_malformed_qasm_and_exits_two() {
    let dir = ScratchDir::with_files(
        "batchskip",
        &[
            ("a_good.qasm", GOOD_QASM),
            ("b_bad.qasm", BAD_QASM),
            ("c_good.qasm", GOOD_QASM),
        ],
    );
    let out = qcp(&[
        "batch",
        "--qasm-dir",
        dir.path(),
        "--envs",
        "grid:2x2",
        "--strategy",
        "hybrid",
        "--budget-ms",
        "500",
    ]);
    // The malformed file is skipped (distinct exit 2), but the rest of
    // the batch ran: both good circuits appear in the report on stdout.
    assert_eq!(exit_code(&out), 2, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("a_good@"), "{stdout}");
    assert!(stdout.contains("c_good@"), "{stdout}");
    assert!(stdout.contains("2 ok, 0 failed"), "{stdout}");
    assert!(!stdout.contains("b_bad@"), "{stdout}");
    let err = stderr(&out);
    assert!(err.contains("b_bad.qasm:3:1"), "no line:col: {err}");
    assert!(err.contains("skipping malformed"), "{err}");
    assert!(err.contains("skipped 1 malformed QASM file(s)"), "{err}");

    // A directory where *everything* is malformed is a hard error, still
    // exit 2.
    let dir = ScratchDir::with_files("allbad", &[("bad.qasm", BAD_QASM)]);
    let out = qcp(&["batch", "--qasm-dir", dir.path(), "--envs", "grid:2x2"]);
    assert_eq!(exit_code(&out), 2, "{}", stderr(&out));
    assert!(
        stderr(&out).contains("all 1 .qasm file(s)"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn serve_rejects_bad_flags_with_exit_two() {
    let out = qcp(&["serve", "--workers", "two"]);
    assert_eq!(exit_code(&out), 2, "{}", stderr(&out));
    let out = qcp(&["serve", "--frobnicate"]);
    assert_eq!(exit_code(&out), 2, "{}", stderr(&out));
    let out = qcp(&["serve", "--addr", "definitely:not:an:addr"]);
    assert_eq!(exit_code(&out), 2, "{}", stderr(&out));
}
