#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Integration tests for the §7 future-work extensions: gate commutation
//! and workspace-size balancing.

use qcp::prelude::*;
use qcp_circuit::library;

#[test]
fn commutation_aware_is_sound_and_no_worse_on_qft6() {
    let env = molecules::trans_crotonic_acid();
    let t = Threshold::new(200.0);
    let circuit = library::qft(6);

    let plain = Placer::new(&env, PlacerConfig::with_threshold(t))
        .place(&circuit)
        .unwrap();
    let smart = Placer::new(
        &env,
        PlacerConfig::with_threshold(t).commutation_aware(true),
    )
    .place(&circuit)
    .unwrap();

    // Soundness: no gates lost, swap stages consistent.
    assert_eq!(
        smart.schedule.gate_count(),
        circuit.gate_count() + smart.swap_count()
    );
    // QFT phases are all diagonal (ZZ/Rz), so commutation hoisting packs
    // workspaces at least as tightly as the greedy scheme.
    assert!(smart.subcircuit_count() <= plain.subcircuit_count());
}

#[test]
fn commutation_aware_helps_on_diagonal_heavy_circuits() {
    // A circuit of purely diagonal gates in adversarial order: greedy
    // extraction fragments it, commutation-aware extraction re-packs it.
    let q = Qubit::new;
    let mut b = Circuit::builder(4);
    // Chain-friendly pairs interleaved with a chain-breaking pair.
    b.gate(Gate::zz(q(0), q(1), 90.0));
    b.gate(Gate::zz(q(0), q(2), 90.0)); // will break once 1-2 and 2-3 are in
    b.gate(Gate::zz(q(1), q(2), 90.0));
    b.gate(Gate::zz(q(2), q(3), 90.0));
    b.gate(Gate::zz(q(0), q(1), -90.0));
    b.gate(Gate::zz(q(1), q(2), -90.0));
    let circuit = b.build();

    let env = molecules::lnn_chain(4, 10.0);
    let t = Threshold::new(11.0);
    let plain = Placer::new(&env, PlacerConfig::with_threshold(t))
        .place(&circuit)
        .unwrap();
    let smart = Placer::new(
        &env,
        PlacerConfig::with_threshold(t).commutation_aware(true),
    )
    .place(&circuit)
    .unwrap();
    assert!(
        smart.subcircuit_count() <= plain.subcircuit_count(),
        "commutation-aware {} vs plain {}",
        smart.subcircuit_count(),
        plain.subcircuit_count()
    );
    assert!(smart.runtime.units() <= plain.runtime.units() * 1.05);
}

#[test]
fn workspace_cap_trades_stage_count_for_swap_count() {
    let env = molecules::histidine();
    let t = Threshold::new(500.0);
    let circuit = library::aqft(9);
    let free = Placer::new(&env, PlacerConfig::with_threshold(t))
        .place(&circuit)
        .unwrap();
    let capped = Placer::new(
        &env,
        PlacerConfig::with_threshold(t).max_workspace_gates(15),
    )
    .place(&circuit)
    .unwrap();
    assert!(capped.subcircuit_count() >= free.subcircuit_count());
    // Either way the full gate set executes.
    assert_eq!(
        capped.schedule.gate_count(),
        circuit.gate_count() + capped.swap_count()
    );
}

#[test]
fn extensions_combine() {
    let env = molecules::trans_crotonic_acid();
    let circuit = library::phase_estimation();
    let placer = Placer::new(
        &env,
        PlacerConfig::with_threshold(Threshold::new(200.0))
            .commutation_aware(true)
            .max_workspace_gates(20)
            .candidates(40),
    );
    let outcome = placer.place(&circuit).unwrap();
    assert_eq!(
        outcome.schedule.gate_count(),
        circuit.gate_count() + outcome.swap_count()
    );
    assert!(outcome.runtime.units().is_finite());
}
