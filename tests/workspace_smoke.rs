#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Workspace smoke test: the facade crate re-exports the whole stack and
//! every packaged molecule is usable out of the box.

use qcp::prelude::*;

/// `qcp::prelude::*` must glob-import cleanly and expose the core types of
/// all four member crates under their canonical names.
#[test]
fn prelude_glob_imports_resolve() {
    // qcp_circuit
    let mut b = Circuit::builder(2);
    b.gate(Gate::zz(Qubit::new(0), Qubit::new(1), 90.0));
    let circuit = b.build();
    assert_eq!(circuit.qubit_count(), 2);
    let _t: Time = Time::from_units(1.0);

    // qcp_graph
    let g: Graph = circuit.interaction_graph();
    assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));

    // qcp_env
    let env: Environment = molecules::acetyl_chloride();
    let _threshold: Threshold = Threshold::new(100.0);

    // qcp_place
    let _model: CostModel = CostModel::overlapped();
    let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(100.0)));
    let outcome = placer.place(&circuit).expect("tiny circuit places");
    let placement: &Placement = &outcome.stages[0].placement;
    assert!(placement.physical(Qubit::new(0)) != placement.physical(Qubit::new(1)));
}

/// The module-path re-exports (`qcp::circuit`, `qcp::env`, ...) point at
/// the same crates as the prelude.
#[test]
fn module_reexports_are_the_same_crates() {
    let via_module = qcp::env::molecules::acetyl_chloride();
    let via_prelude = molecules::acetyl_chloride();
    assert_eq!(via_module.qubit_count(), via_prelude.qubit_count());
    let _: qcp::circuit::Circuit = qcp::circuit::library::qec3_encoder();
    let _: qcp::graph::Graph = qcp::graph::generate::chain(3);
    let _: qcp::place::PlacerConfig = PlacerConfig::with_threshold(Threshold::new(1.0));
}

/// Every named molecule constructor yields an environment that is connected
/// at its own connectivity threshold — the minimal property the placer
/// needs to make progress on it.
#[test]
fn named_molecules_connected_at_connectivity_threshold() {
    use qcp::graph::traversal::is_connected;

    let fixed: [(&str, Environment); 5] = [
        ("acetyl_chloride", molecules::acetyl_chloride()),
        ("trans_crotonic_acid", molecules::trans_crotonic_acid()),
        ("histidine", molecules::histidine()),
        ("boc_glycine_fluoride", molecules::boc_glycine_fluoride()),
        ("pentafluoro_iron", molecules::pentafluoro_iron()),
    ];
    for (name, env) in fixed {
        let t = env
            .connectivity_threshold()
            .unwrap_or_else(|| panic!("{name} has no connectivity threshold"));
        assert!(
            is_connected(&env.fast_graph(t)),
            "{name} disconnected at its connectivity threshold {t:?}"
        );
        assert!(env.qubit_count() > 0, "{name} is empty");
    }

    // Parametric families.
    let families: [(&str, Environment); 4] = [
        ("lnn_chain(7)", molecules::lnn_chain(7, 10.0)),
        ("lnn_chain_1khz(9)", molecules::lnn_chain_1khz(9)),
        ("grid(3x4)", molecules::grid(3, 4, 25.0)),
        ("random_molecule(8)", molecules::random_molecule(8, 2007)),
    ];
    for (name, env) in families {
        let t = env
            .connectivity_threshold()
            .unwrap_or_else(|| panic!("{name} has no connectivity threshold"));
        assert!(
            is_connected(&env.fast_graph(t)),
            "{name} disconnected at its connectivity threshold {t:?}"
        );
    }
}

/// The table-name lookup agrees with `molecules::NAMES` and with the
/// direct constructors.
#[test]
fn named_lookup_covers_all_names() {
    for &name in molecules::NAMES {
        let env = molecules::named(name)
            .unwrap_or_else(|| panic!("molecules::named({name:?}) returned None"));
        assert!(env.qubit_count() >= 3, "{name} suspiciously small");
    }
    assert!(molecules::named("benzene-nope").is_none());
}
