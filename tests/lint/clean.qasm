// Fully clean fixture: every wire interacts, no redundant barriers.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
barrier q;
cx q[1],q[0];
