// Deliberately imperfect circuit: exercises every lint finding class.
// q[3] is declared but never touched (unused-qubit); q[2] only sees
// single-qubit gates (non-interacting-qubit); the two adjacent barriers
// over the same wires have no gates between them (redundant-barrier).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
h q[2];
barrier q;
barrier q;
cx q[1],q[0];
