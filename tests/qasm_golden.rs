#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Golden corpus tests: place every committed `tests/qasm/*.qasm` file on
//! the three reference topologies with the hybrid strategy and compare
//! against committed outcome fingerprints.
//!
//! The fingerprint ([`BatchReport::outcome_fingerprint`]) hashes the
//! resolution, runtime bits, stage count, swap count, and every placement
//! assignment, so *any* drift in the QASM frontend (lexer, parser,
//! lowering, levelization) or in the placement pipeline shows up as a
//! diff in this table instead of a silent behavior change.
//!
//! To regenerate after an intentional change:
//!
//! ```console
//! $ QCP_GOLDEN_PRINT=1 cargo test --test qasm_golden -- --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN` below (review the diff — a
//! wholesale change you did not expect is a regression, not a refresh).

use qcp::circuit::qasm;
use qcp::place::batch::{BatchPlacer, BatchRequest};
use qcp::prelude::*;
use qcp_env::topologies::{Delays, TopologySpec};

/// The reference topology specs, parsed exactly as the CLI parses
/// `--topology` arguments.
const TOPOLOGIES: [&str; 3] = ["line:16", "grid:4x4", "heavy_hex:3"];

/// `(file stem, [fingerprint on line:16, grid:4x4, heavy_hex:3])`.
const GOLDEN: [(&str, [u64; 3]); 10] = [
    (
        "adder4",
        [0xb0340895ffd63096, 0x7f613e80e3ec7200, 0x362a9d4e9213679c],
    ),
    (
        "bell",
        [0x4734f061273ead54, 0x4734f061273ead54, 0x4734f061273ead54],
    ),
    (
        "ghz8",
        [0x3fe46238c60c02bf, 0x580935d358758e47, 0x397c8da3d96602e7],
    ),
    (
        "hwe4",
        [0xce9f67bfca9238cb, 0x6997e2157096f64e, 0xce9f67bfca9238cb],
    ),
    (
        "ising6",
        [0x6145160ad3d5ae55, 0xd494f63e71ed756d, 0x257ceec95329b2d5],
    ),
    (
        "qec3",
        [0xa3af6d0379f5fb1d, 0x9d6918fb346b47c9, 0xf9bfc6d180682f95],
    ),
    (
        "qft4",
        [0x6b1a9573815df76d, 0xd46a37392941d687, 0x74549f63a86eebe2],
    ),
    (
        "random_cnot12",
        [0xdc146c31f83e2a02, 0x4c04c256f1f784ba, 0x5ce6fa3ff6e7bc68],
    ),
    (
        "teleport3",
        [0x676acb15af808922, 0x5ec4b015aa9b636e, 0x5ec4a715aa9b5423],
    ),
    (
        "ugates4",
        [0xf93d95d9ad8edd15, 0xab36833ec0b70d08, 0x928e0f7c89ab3d91],
    ),
];

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/qasm")
}

fn load(stem: &str) -> Circuit {
    let path = corpus_dir().join(format!("{stem}.qasm"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    qasm::parse(&text)
        .unwrap_or_else(|e| panic!("{stem}.qasm does not parse: {e}"))
        .circuit
}

fn build_env(spec: &str) -> Environment {
    let parsed: TopologySpec = spec
        .parse()
        .unwrap_or_else(|e| panic!("spec `{spec}`: {e}"));
    parsed.build(Delays::default())
}

/// The golden configuration: hybrid strategy, unlimited budget (every
/// corpus case resolves exactly — asserted below — so no heuristic
/// fallback can wobble the fingerprints), trimmed candidate count to keep
/// the unoptimized test binary quick.
fn golden_config(env: &Environment) -> PlacerConfig {
    let threshold = env
        .connectivity_threshold()
        .expect("reference topologies are connected");
    PlacerConfig::with_threshold(threshold)
        .candidates(30)
        .strategy(Strategy::Hybrid)
}

fn fingerprint(stem: &str, circuit: &Circuit, spec: &str) -> u64 {
    let env = build_env(spec);
    let config = golden_config(&env);
    let request = BatchRequest::new(format!("{stem}@{spec}"), circuit.clone(), env, config);
    let batch = BatchPlacer::new(vec![request]);
    let report = batch.run();
    assert_eq!(report.failed(), 0, "{stem}@{spec} must place");
    assert_eq!(
        report.results[0].resolution(),
        Some(Resolution::Exact),
        "{stem}@{spec} must resolve exactly (fingerprints would otherwise \
         depend on the heuristic fallback)"
    );
    // Every golden outcome must also carry an independent certificate:
    // the fingerprints pin the bits, the certificate pins the meaning.
    let request = &batch.requests()[0];
    let outcome = report.results[0]
        .outcome
        .as_ref()
        .expect("failed() == 0 above");
    let options = qcp::verify::VerifyOptions::from_config(&request.config);
    qcp::verify::certify(&request.circuit, &request.environment, &options, outcome)
        .unwrap_or_else(|v| panic!("{stem}@{spec} fails certification: {v:?}"));
    report.outcome_fingerprint()
}

#[test]
fn corpus_is_complete_and_in_sync() {
    // Every committed file appears in the golden table and vice versa.
    let mut on_disk: Vec<String> = std::fs::read_dir(corpus_dir())
        .expect("tests/qasm exists")
        .filter_map(std::result::Result::ok)
        .filter_map(|e| {
            let p = e.path();
            (p.extension()? == "qasm")
                .then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    on_disk.sort();
    let in_table: Vec<&str> = GOLDEN.iter().map(|(stem, _)| *stem).collect();
    assert_eq!(on_disk, in_table, "tests/qasm and GOLDEN disagree");
}

#[test]
fn golden_fingerprints_match() {
    let print = std::env::var_os("QCP_GOLDEN_PRINT").is_some();
    let mut failures = Vec::new();
    for (stem, expected) in GOLDEN {
        let circuit = load(stem);
        let got: Vec<u64> = TOPOLOGIES
            .iter()
            .map(|spec| fingerprint(stem, &circuit, spec))
            .collect();
        if print {
            println!(
                "    (\"{stem}\", [{:#018x}, {:#018x}, {:#018x}]),",
                got[0], got[1], got[2]
            );
            continue;
        }
        for (i, (&want, &have)) in expected.iter().zip(&got).enumerate() {
            if want != have {
                failures.push(format!(
                    "{stem}@{}: expected {want:#018x}, got {have:#018x}",
                    TOPOLOGIES[i]
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "golden fingerprints drifted (QCP_GOLDEN_PRINT=1 regenerates):\n{}",
        failures.join("\n")
    );
}
