#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Lint corpus pins: the committed QASM placement corpus must stay
//! lint-clean with a stable combined fingerprint, and the deliberately
//! imperfect fixtures under `tests/lint/` must keep producing exactly
//! the expected findings.
//!
//! The combined fingerprint folds each file's
//! [`LintReport::fingerprint`] in sorted-filename order with the same
//! FNV-1a step the per-report hash uses — matching what
//! `qcp lint --qasm-dir` prints, so CI can assert the CLI summary
//! against this constant.

use qcp::circuit::qasm;
use qcp::verify::{lint_qasm, LintReport};

/// Lints every `*.qasm` under `dir` (sorted), returning
/// `(file stem, report)` pairs.
fn lint_dir(dir: &str) -> Vec<(String, LintReport)> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(dir);
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", root.display()))
        .filter_map(std::result::Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "qasm"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path).unwrap();
            let parsed = qasm::parse(&text)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
            let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
            (stem, lint_qasm(&parsed))
        })
        .collect()
}

/// The `qcp lint` combined fingerprint: FNV-1a over each per-file
/// fingerprint's little-endian bytes, in input order.
fn combined_fingerprint(reports: &[(String, LintReport)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (_, report) in reports {
        for byte in report.fingerprint().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[test]
fn placement_corpus_is_lint_clean() {
    let reports = lint_dir("tests/qasm");
    assert_eq!(reports.len(), 10, "tests/qasm corpus changed size");
    for (stem, report) in &reports {
        assert!(
            report.is_clean(),
            "{stem}.qasm grew lint findings: {:?}",
            report.findings
        );
    }
    // Pinned: the fingerprint of ten clean reports. Matches the summary
    // `qcp lint --qasm-dir tests/qasm` prints. A clean report hashes to
    // the FNV offset basis, so this only moves if the corpus size or the
    // fingerprint scheme changes — both worth a conscious diff.
    assert_eq!(
        combined_fingerprint(&reports),
        0x7be4_8df5_ef21_76a5,
        "combined lint fingerprint drifted"
    );
}

#[test]
fn warned_fixture_produces_every_finding_class() {
    let reports = lint_dir("tests/lint");
    let clean = &reports
        .iter()
        .find(|(stem, _)| stem == "clean")
        .expect("tests/lint/clean.qasm exists")
        .1;
    assert!(clean.is_clean(), "clean fixture: {:?}", clean.findings);

    let warned = &reports
        .iter()
        .find(|(stem, _)| stem == "warned")
        .expect("tests/lint/warned.qasm exists")
        .1;
    let codes: Vec<&str> = warned.findings.iter().map(|f| f.code).collect();
    assert_eq!(
        codes,
        ["non-interacting-qubit", "unused-qubit", "redundant-barrier"],
        "warned fixture findings drifted: {:?}",
        warned.findings
    );
    // Spans survive the QASM frontend into the findings.
    assert!(
        warned.findings.iter().all(|f| f.span.is_some()),
        "every finding should carry a source span: {:?}",
        warned.findings
    );
    assert_eq!(warned.stats.unused_qubits, 1);
    assert_eq!(warned.stats.non_interacting_qubits, 1);
}
