#![allow(clippy::unwrap_used, clippy::expect_used)]
//! End-to-end integration: every library circuit on every molecule that
//! fits, with schedule-consistency checks.

use qcp::prelude::*;
use qcp_circuit::library;
use qcp_place::PlaceError;

/// Places `circuit` on `env` at the connectivity threshold and validates
/// the outcome's internal consistency.
fn place_and_check(env: &Environment, circuit: &qcp::circuit::Circuit) {
    let threshold = env
        .connectivity_threshold()
        .expect("library molecules connect");
    let placer = Placer::new(
        env,
        PlacerConfig::with_threshold(threshold)
            .candidates(40)
            .fine_tuning(1),
    );
    let outcome = match placer.place(circuit) {
        Ok(o) => o,
        Err(PlaceError::CircuitTooLarge { .. }) => return,
        Err(e) => panic!("{} on {}: {e}", circuit.qubit_count(), env.name()),
    };
    // Gate bookkeeping.
    assert_eq!(
        outcome.schedule.gate_count(),
        circuit.gate_count() + outcome.swap_count(),
        "schedule loses or invents gates"
    );
    // Runtime is positive for non-empty circuits and finite.
    if circuit.gate_count() > 0 && circuit.gates().any(|g| !g.is_free()) {
        assert!(outcome.runtime.units() > 0.0);
    }
    assert!(
        outcome.runtime.units().is_finite(),
        "infinite runtime means a slow coupling leaked in"
    );
    // Stage placements are total and injective by construction; check the
    // swap stages connect them.
    for pair in outcome.stages.windows(2) {
        let perm = pair[0].placement.permutation_to(&pair[1].placement);
        let pos = pair[1].swaps.simulate(env.qubit_count());
        for (v, d) in perm.iter().enumerate() {
            if let Some(d) = d {
                assert_eq!(pos[v], *d, "swap stage fails to deliver p{v} -> p{d}");
            }
        }
    }
}

#[test]
fn every_circuit_on_every_molecule() {
    let circuits: Vec<&str> = library::NAMES.to_vec();
    for mol in molecules::NAMES {
        let env = molecules::named(mol).unwrap();
        for cname in &circuits {
            let circuit = library::named(cname).unwrap();
            place_and_check(&env, &circuit);
        }
    }
}

#[test]
fn every_circuit_on_grids_and_chains() {
    let envs = vec![
        molecules::lnn_chain(12, 10.0),
        molecules::grid(3, 4, 10.0),
        molecules::random_molecule(12, 5),
    ];
    for env in envs {
        for cname in library::NAMES {
            let circuit = library::named(cname).unwrap();
            place_and_check(&env, &circuit);
        }
    }
}

#[test]
fn facade_prelude_covers_the_pipeline() {
    // Smoke-test the `qcp` facade: build a circuit via the prelude types
    // only, place it, and read the answer back.
    let env = molecules::acetyl_chloride();
    let mut b = Circuit::builder(2);
    b.gate(Gate::ry(Qubit::new(0), 90.0));
    b.gate(Gate::zz(Qubit::new(0), Qubit::new(1), 90.0));
    let circuit = b.build();
    let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(100.0)));
    let outcome = placer.place(&circuit).unwrap();
    // Optimal: the zz lands on the fastest coupling M–C1 = 38; the Ry
    // prefers the 1-unit C2... but q0 must touch q1 via a fast edge, so
    // the best is Ry on C1 (8) then coupling 38: max start 8 + 38 = 46.
    assert_eq!(outcome.runtime.units(), 46.0);
    let _ = Time::from_units(46.0);
    let g: &qcp::graph::Graph = placer.fast_graph();
    assert_eq!(g.node_count(), 3);
    let _ = NodeId::new(0);
}

#[test]
fn leveled_cost_model_runs_end_to_end() {
    let env = molecules::trans_crotonic_acid();
    let mut config = PlacerConfig::with_threshold(env.connectivity_threshold().unwrap());
    config.cost_model = CostModel::leveled();
    let placer = Placer::new(&env, config);
    let outcome = placer.place(&library::qec5_benchmark()).unwrap();
    // Leveled execution can only be slower than overlapped.
    let overlapped = Placer::new(
        &env,
        PlacerConfig::with_threshold(env.connectivity_threshold().unwrap()),
    )
    .place(&library::qec5_benchmark())
    .unwrap();
    assert!(outcome.runtime.units() >= overlapped.runtime.units() - 1e-9);
}

#[test]
fn failure_injection_degenerate_environments() {
    // Single-nucleus environment: one-qubit circuits place, wider fail.
    let mut b = Environment::builder("lonely");
    b.nucleus("X", 1.0);
    let env = b.build().unwrap();
    let mut cb = Circuit::builder(1);
    cb.gate(Gate::ry(Qubit::new(0), 90.0));
    let circuit = cb.build();
    let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(10.0)));
    let outcome = placer.place(&circuit).unwrap();
    assert_eq!(outcome.runtime.units(), 1.0);

    let wide = library::qec3_encoder();
    assert!(matches!(
        placer.place(&wide).unwrap_err(),
        PlaceError::CircuitTooLarge { .. }
    ));
}

#[test]
fn failure_injection_unroutable_chain() {
    // Two-component environment with no finite bridging coupling: a
    // circuit whose interactions straddle the components cannot be placed
    // when its pattern does not embed into a single component.
    let mut b = Environment::builder("islands");
    let a0 = b.nucleus("A0", 1.0);
    let a1 = b.nucleus("A1", 1.0);
    let c0 = b.nucleus("B0", 1.0);
    let c1 = b.nucleus("B1", 1.0);
    b.bond(a0, a1, 10.0).unwrap();
    b.bond(c0, c1, 10.0).unwrap();
    let env = b.build().unwrap();

    // A 3-qubit chain interaction cannot embed into two disjoint edges.
    let mut cb = Circuit::builder(3);
    cb.gate(Gate::zz(Qubit::new(0), Qubit::new(1), 90.0));
    cb.gate(Gate::zz(Qubit::new(1), Qubit::new(2), 90.0));
    let circuit = cb.build();
    let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(11.0)));
    // Each gate alone embeds, so extraction succeeds with 2 workspaces,
    // but moving values between the islands is impossible.
    assert!(matches!(
        placer.place(&circuit).unwrap_err(),
        PlaceError::RoutingImpossible { .. }
    ));
}
