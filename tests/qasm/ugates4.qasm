// Standard-gate showcase: every qelib1 single-qubit gate plus the
// composite controlled family, so the whole lowering table is exercised
// by one corpus file.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
u1(pi/8) q[0];
u2(0, pi) q[1];
u3(pi/2, 0.1, -0.1) q[2];
p(pi/16) q[3];
x q[0];
y q[1];
z q[2];
h q[3];
s q[0];
sdg q[1];
t q[2];
tdg q[3];
sx q[0];
sxdg q[1];
id q[2];
u0(1) q[3];
cy q[0], q[1];
ch q[1], q[2];
crx(pi/4) q[2], q[3];
cry(pi/4) q[3], q[0];
crz(pi/4) q[0], q[2];
cu3(pi/2, 0, pi) q[1], q[3];
cz q[0], q[1];
cswap q[0], q[2], q[3];
