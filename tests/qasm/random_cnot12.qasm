// A fixed pseudo-random 12-qubit CNOT circuit (hand-written, committed —
// no generator involved): mostly local pairs with a handful of
// long-range couplings, the shape of the scalability workloads.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[12];
h q;
cx q[0], q[1];
cx q[2], q[3];
cx q[4], q[5];
cx q[6], q[7];
cx q[8], q[9];
cx q[10], q[11];
cx q[1], q[2];
cx q[3], q[4];
cx q[5], q[6];
cx q[7], q[8];
cx q[9], q[10];
cx q[0], q[4];
cx q[3], q[7];
cx q[6], q[10];
cx q[2], q[11];
cx q[1], q[5];
cx q[8], q[11];
cx q[0], q[2];
cx q[4], q[6];
cx q[5], q[9];
cx q[3], q[10];
cx q[7], q[11];
cx q[1], q[8];
cx q[9], q[0];
