// Hardware-efficient variational ansatz on 4 qubits: Ry/Rz rotation
// layers with plain radian literals, entangled by a CNOT ring.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
ry(0.1) q[0];
ry(0.735) q[1];
ry(1.25) q[2];
ry(2.0) q[3];
rz(0.42) q[0];
rz(1.9) q[1];
rz(0.07) q[2];
rz(2.71) q[3];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
cx q[3], q[0];
ry(0.5) q[0];
ry(1.1) q[1];
ry(0.9) q[2];
ry(0.33) q[3];
