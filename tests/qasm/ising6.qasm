// One Trotter step of a 6-site transverse-field Ising ring: native ZZ
// couplings (rzz maps 1:1 onto the NMR drift evolution), an rxx term,
// and the transverse field as rx pulses.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
rx(pi/2) q;
rzz(pi/4) q[0], q[1];
rzz(pi/4) q[1], q[2];
rzz(pi/4) q[2], q[3];
rzz(pi/4) q[3], q[4];
rzz(pi/4) q[4], q[5];
rzz(pi/4) q[5], q[0];
rxx(pi/8) q[0], q[3];
rx(0.61) q;
