// Cuccaro-style 2+2-bit ripple-carry adder built from user-defined
// majority/unmajority gates — exercises custom `gate` definitions that
// are inlined at parse time (each MAJ/UMA expands through cx and ccx).
OPENQASM 2.0;
include "qelib1.inc";

gate maj a,b,c {
  cx c, b;
  cx c, a;
  ccx a, b, c;
}
gate uma a,b,c {
  ccx a, b, c;
  cx c, a;
  cx a, b;
}

qreg cin[1];
qreg a[2];
qreg b[2];
qreg cout[1];
creg sum[3];

// b := a + b
maj cin[0], b[0], a[0];
maj a[0], b[1], a[1];
cx a[1], cout[0];
uma a[0], b[1], a[1];
uma cin[0], b[0], a[0];

measure b[0] -> sum[0];
measure b[1] -> sum[1];
measure cout[0] -> sum[2];
