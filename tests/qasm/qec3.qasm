// 3-qubit bit-flip code: encode, a deliberate error, decode, and the
// Toffoli correction (ccx inlines through its qelib1 definition).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[1];
// encode |psi> q[0] into the codeword
cx q[0], q[1];
cx q[0], q[2];
barrier q;
x q[1];          // injected bit-flip
barrier q;
// decode and correct
cx q[0], q[1];
cx q[0], q[2];
ccx q[2], q[1], q[0];
measure q[0] -> c[0];
