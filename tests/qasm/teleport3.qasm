// Quantum teleportation of q[0] onto q[2]: entangle, Bell-measure,
// classically correct. The measurements and conditioned corrections are
// accepted and dropped (with warnings) — the placer sees the unitary
// interaction structure only.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c0[1];
creg c1[1];
u3(0.3, 0.2, 0.1) q[0];   // the state to teleport
h q[1];
cx q[1], q[2];
barrier q;
cx q[0], q[1];
h q[0];
measure q[0] -> c0[0];
measure q[1] -> c1[0];
if (c1 == 1) x q[2];
if (c0 == 1) z q[2];
