//! # qcp — Quantum Circuit Placement
//!
//! Facade crate re-exporting the whole placement stack. See the
//! workspace `README.md` for an overview, `GUIDE.md` for a task-oriented
//! walkthrough (its snippets run as doc-tests of this crate), and
//! `DESIGN.md` for the mapping between the paper's sections and the
//! crates.

#![forbid(unsafe_code)]

pub use qcp_circuit as circuit;
pub use qcp_env as env;
pub use qcp_graph as graph;
pub use qcp_place as place;
pub use qcp_serve as serve;
pub use qcp_verify as verify;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use qcp_circuit::{Circuit, Gate, Qubit, Time};
    pub use qcp_env::{molecules, topologies, Environment, Threshold};
    pub use qcp_graph::{Graph, NodeId};
    pub use qcp_place::{
        execute, execute_with, BatchPlacer, BatchReport, CachePolicy, CostModel, PlaceRequest,
        Placement, PlacementCache, Placer, PlacerConfig, Resolution, SearchBudget, Strategy,
    };
}

// Compile and run every Rust snippet in GUIDE.md as a doc-test, so the
// walkthrough can never drift from the real API.
#[doc = include_str!("../GUIDE.md")]
#[cfg(doctest)]
pub struct GuideDoctests;
