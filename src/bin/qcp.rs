//! `qcp` — command-line quantum circuit placement.
//!
//! ```console
//! $ qcp molecules                         # list built-in environments
//! $ qcp circuits                          # list built-in circuits
//! $ qcp place --circuit qft6 --env trans-crotonic-acid --threshold 200
//! $ qcp place --circuit qft6 --topology grid:8x8
//! $ qcp place --circuit qft6 --topology grid:8x8 --strategy hybrid --budget-ms 50
//! $ qcp place --circuit my.qc --env my.mol --auto --gantt
//! $ qcp batch --circuits qec3,qec5,qft6 \
//!       --envs trans-crotonic-acid,grid:4x4,heavy_hex:3 --jobs 4
//! ```
//!
//! ```console
//! $ qcp place --qasm tests/qasm/qft4.qasm --topology grid:4x4 --strategy hybrid
//! $ qcp batch --qasm-dir tests/qasm --envs line:16,grid:4x4,heavy_hex:3 --jobs 4
//! $ qcp serve --addr 127.0.0.1:7878 --workers 4
//! ```
//!
//! Circuits are looked up in the built-in library first, then read as
//! files: OpenQASM 2.0 for `--qasm` and `*.qasm` paths
//! (`qcp_circuit::qasm`, warnings for dropped classical constructs go to
//! stderr), the text format of `qcp_circuit::text` otherwise.
//! Environments resolve as molecule names, then device-topology specs
//! (`qcp_env::topologies::TopologySpec`, e.g. `grid:8x8`), then files in
//! the `qcp_env::text` format.
//!
//! Exit codes follow a fixed taxonomy (GUIDE.md §9): 0 success, 2
//! parse/input error, 3 search budget exhausted, 4 verification reject
//! (including `lint --deny`), 5 internal error (a contained panic or
//! broken invariant).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;

use qcp::place::batch::BatchPlacer;
use qcp::place::fidelity::ExposureReport;
use qcp::place::request::Certifier;
use qcp::place::timeline::Timeline;
use qcp::place::PlaceError;
use qcp::prelude::*;
use qcp::serve::{ServeConfig, Server};
use qcp::verify::{lint_circuit, lint_qasm, LintReport, PlacementCertifier};
use qcp_circuit::library;
use qcp_env::molecules;
use qcp_env::topologies::{Delays, TopologySpec};

/// A CLI failure carrying its taxonomy exit code (GUIDE.md §9).
struct CliError {
    exit: u8,
    message: String,
}

impl CliError {
    /// Exit 2: the input (arguments, circuit, environment) is at fault.
    fn input(message: impl Into<String>) -> Self {
        CliError {
            exit: 2,
            message: message.into(),
        }
    }

    /// Exit 4: a placement or circuit failed verification/lint policy.
    fn verify(message: impl Into<String>) -> Self {
        CliError {
            exit: 4,
            message: message.into(),
        }
    }

    /// Maps a placement-pipeline error through its failure class
    /// (input → 2, budget → 3, internal → 5).
    fn from_place(e: &qcp::place::PlaceError) -> Self {
        CliError {
            exit: e.class().exit_code(),
            message: e.to_string(),
        }
    }
}

// Untyped string errors from helpers and argument parsing are input
// errors: the user can fix them.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::input(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::input(message)
    }
}

fn main() -> ExitCode {
    // The same panic containment the daemon gives its workers: a bug
    // anywhere below answers with the documented exit 5 instead of an
    // abort-style 101. The `QCP_CHAOS` seam lets the exit-code test suite
    // drive this path deliberately.
    match std::panic::catch_unwind(run) {
        Ok(code) => code,
        Err(_) => {
            eprintln!("error: internal panic (exit 5); this is a bug");
            ExitCode::from(5)
        }
    }
}

fn run() -> ExitCode {
    if std::env::var_os("QCP_CHAOS").is_some_and(|v| v == "panic") {
        panic!("chaos: injected CLI panic");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("molecules") => {
            for name in molecules::NAMES {
                let env = molecules::named(name).expect("registry name");
                println!("{name}: {} nuclei", env.qubit_count());
            }
            ExitCode::SUCCESS
        }
        Some("circuits") => {
            for name in library::NAMES {
                let c = library::named(name).expect("registry name");
                println!(
                    "{name}: {} qubits, {} gates ({} two-qubit)",
                    c.qubit_count(),
                    c.gate_count(),
                    c.two_qubit_gate_count()
                );
            }
            ExitCode::SUCCESS
        }
        Some("place") => finish(run_place(&args[1..])),
        Some("batch") => finish(run_batch(&args[1..])),
        Some("lint") => finish(run_lint(&args[1..])),
        Some("serve") => finish(run_serve(&args[1..])),
        _ => {
            eprintln!(
                "usage: qcp <molecules|circuits|place|batch|lint> [options]\n\
                 place options:\n\
                 \x20 --circuit <name|file>   circuit (library name, *.qasm, or text file)\n\
                 \x20 --qasm <file>           circuit as an OpenQASM 2.0 file\n\
                 \x20 --env <name|spec|file>  environment (molecule, topology spec, or file)\n\
                 \x20 --topology <spec>       device backend (line:16, ring:12, grid:8x8,\n\
                 \x20                         heavy_hex:3, star:5); alternative to --env\n\
                 \x20 --coupling <units>      coupling delay for --topology (default 10)\n\
                 \x20 --threshold <units>     fast-interaction threshold\n\
                 \x20 --auto                  use the connectivity threshold (default)\n\
                 \x20 --k <n>                 candidate monomorphisms (default 100)\n\
                 \x20 --no-lookahead          greedy stage selection\n\
                 \x20 --fine-tune <rounds>    hill-climbing sweeps (default 2)\n\
                 \x20 --commutation           commutation-aware extraction\n\
                 \x20 --strategy <s>          exact | anneal | hybrid (default exact)\n\
                 \x20 --budget-ms <ms>        wall-clock search budget per request\n\
                 \x20 --budget-nodes <n>      deterministic search-node budget\n\
                 \x20 --search-jobs <n>       parallel exact-search workers (default 1;\n\
                 \x20                         0 = all cores; results are worker-count\n\
                 \x20                         independent)\n\
                 \x20 --gantt                 print the timed pulse chart\n\
                 \x20 --exposure              print idle/coupling exposure\n\
                 \x20 --verify                independently certify the outcome\n\
                 batch options:\n\
                 \x20 --circuits <a,b,...>    comma-separated circuits (names or files)\n\
                 \x20 --qasm-dir <dir>        ingest every *.qasm file in a directory\n\
                 \x20 --envs <a,b,...>        comma-separated environments/topologies\n\
                 \x20 --jobs <k>              worker threads (default: all cores)\n\
                 \x20 --threshold <units>     fixed threshold (default: per-env auto)\n\
                 \x20 --coupling <units>      coupling delay for topology specs\n\
                 \x20 --k/--no-lookahead/--fine-tune/--commutation as for place\n\
                 \x20 --strategy/--budget-ms/--budget-nodes/--search-jobs as for place\n\
                 \x20 --verify                certify every successful outcome\n\
                 \x20 --no-dedup              disable cross-batch placement dedup\n\
                 lint options:\n\
                 \x20 qcp lint <input>... [--qasm-dir <dir>] [--deny]\n\
                 \x20 inputs are *.qasm files (span-aware), library names, or\n\
                 \x20 text-format circuit files; --deny fails on any finding (exit 4)\n\
                 serve options:\n\
                 \x20 --addr <host:port>      bind address (default 127.0.0.1:7878)\n\
                 \x20 --workers <n>           worker threads (default: one per core)\n\
                 \x20 --queue-depth <n>       bounded accept queue; overflow gets 429\n\
                 \x20 --budget-ms <ms>        default placement deadline (default 2000)\n\
                 \x20 --max-budget-ms <ms>    ceiling on requested deadlines\n\
                 \x20 --min-budget-ms <ms>    deadline floor; sub-floor budgets get 429\n\
                 \x20 --max-body-kb <kb>      request body cap (413 beyond it)\n\
                 \x20 --cache-entries <n>     result-cache capacity (default 256; 0 disables)\n\
                 \x20 --chaos                 honor x-qcp-chaos fault-injection headers\n\
                 \x20 --no-admin              disable POST /admin/drain\n\
                 exit codes: 0 ok, 2 parse/input, 3 budget exhausted,\n\
                 \x20          4 verify reject, 5 internal"
            );
            ExitCode::from(2)
        }
    }
}

fn finish(result: Result<(), CliError>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.exit)
        }
    }
}

fn run_place(args: &[String]) -> Result<(), CliError> {
    let mut circuit_arg = None;
    let mut qasm_arg = None;
    let mut env_arg = None;
    let mut topology_arg = None;
    let mut coupling = 10.0f64;
    let mut threshold = None;
    let mut k = 100usize;
    let mut lookahead = true;
    let mut fine_tune = 2usize;
    let mut commutation = false;
    let mut strategy = Strategy::Exact;
    let mut budget = SearchBudget::unlimited();
    let mut search_jobs = 1usize;
    let mut gantt = false;
    let mut exposure = false;
    let mut verify = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--circuit" => circuit_arg = Some(value("--circuit")?),
            "--qasm" => qasm_arg = Some(value("--qasm")?),
            "--env" => env_arg = Some(value("--env")?),
            "--topology" => topology_arg = Some(value("--topology")?),
            "--coupling" => coupling = parse_coupling(&value("--coupling")?)?,
            "--threshold" => {
                threshold = Some(
                    value("--threshold")?
                        .parse::<f64>()
                        .map_err(|e| format!("bad threshold: {e}"))?,
                );
            }
            "--auto" => threshold = None,
            "--k" => k = value("--k")?.parse().map_err(|e| format!("bad k: {e}"))?,
            "--no-lookahead" => lookahead = false,
            "--fine-tune" => {
                fine_tune = value("--fine-tune")?
                    .parse()
                    .map_err(|e| format!("bad rounds: {e}"))?;
            }
            "--commutation" => commutation = true,
            "--strategy" => strategy = value("--strategy")?.parse()?,
            "--budget-ms" => {
                budget = budget.with_deadline(parse_budget_ms(&value("--budget-ms")?)?);
            }
            "--budget-nodes" => {
                budget = budget.with_nodes(
                    value("--budget-nodes")?
                        .parse()
                        .map_err(|e| format!("bad node budget: {e}"))?,
                );
            }
            "--search-jobs" => {
                search_jobs = value("--search-jobs")?
                    .parse()
                    .map_err(|e| format!("bad search-jobs count: {e}"))?;
            }
            "--gantt" => gantt = true,
            "--exposure" => exposure = true,
            "--verify" => verify = true,
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }

    let circuit = match (circuit_arg, qasm_arg) {
        (Some(_), Some(_)) => return Err("--circuit and --qasm are mutually exclusive".into()),
        (None, None) => return Err("--circuit or --qasm is required".into()),
        (Some(name), None) => load_circuit(&name)?,
        (None, Some(path)) => load_qasm_file(&path)?,
    };
    let env = match (env_arg, topology_arg) {
        (Some(_), Some(_)) => return Err("--env and --topology are mutually exclusive".into()),
        (None, None) => return Err("--env or --topology is required".into()),
        (Some(name), None) => load_env(&name, coupling)?,
        (None, Some(spec)) => build_topology(&spec, coupling)?,
    };
    let threshold = match threshold {
        Some(units) if units < 0.0 || units.is_nan() => {
            return Err(format!("--threshold must be non-negative, got {units}").into())
        }
        Some(units) => Threshold::new(units),
        None => env
            .connectivity_threshold()
            .ok_or("environment is disconnected; pass --threshold explicitly")?,
    };

    let config = PlacerConfig::with_threshold(threshold)
        .candidates(k)
        .lookahead(lookahead)
        .fine_tuning(fine_tune)
        .commutation_aware(commutation)
        .strategy(strategy)
        .budget(budget)
        .search_jobs(search_jobs);
    // The one-shot CLI runs through the same unified request executor as
    // batch and the serve daemon (qcp_place::request), so keying,
    // verification, and error taxonomy can never drift between surfaces.
    let request = PlaceRequest::new(&circuit, &env)
        .config(config)
        .verify(verify);
    let report = match execute_with(&request, None, Some(&PlacementCertifier)) {
        Ok(report) => report,
        Err(PlaceError::VerificationFailed { violations }) => {
            for line in &violations {
                eprintln!("verify: {line}");
            }
            return Err(CliError::verify(format!(
                "placement failed verification with {} violation(s)",
                violations.len()
            )));
        }
        Err(e) => return Err(CliError::from_place(&e)),
    };
    let outcome = &report.outcome;
    let elapsed = report.elapsed;

    if let Some(summary) = &report.certificate {
        println!("{summary}");
    }

    println!(
        "placed `{}` ({} qubits, {} gates) on `{}` ({} nuclei) at threshold {}",
        circuit_arg_display(&circuit),
        circuit.qubit_count(),
        circuit.gate_count(),
        env.name(),
        env.qubit_count(),
        threshold
    );
    println!(
        "strategy {strategy} resolved {} in {:.1} ms",
        outcome.resolution,
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "runtime {}  |  {} subcircuit(s), {} swap(s)",
        outcome.runtime,
        outcome.subcircuit_count(),
        outcome.swap_count()
    );
    let names = env.nucleus_names();
    const MAX_STAGES_SHOWN: usize = 16;
    for (si, stage) in outcome.stages.iter().take(MAX_STAGES_SHOWN).enumerate() {
        let map: Vec<String> = (0..circuit.qubit_count())
            .map(|qi| {
                let v = stage.placement.physical(Qubit::new(qi));
                format!("q{qi}→{}", names[v.index()])
            })
            .collect();
        println!(
            "stage {}: {} gates, {} swap levels in, [{}]",
            si + 1,
            stage.subcircuit.gate_count(),
            stage.swaps.depth(),
            map.join(", ")
        );
    }
    if outcome.stages.len() > MAX_STAGES_SHOWN {
        println!(
            "… and {} more stage(s)",
            outcome.stages.len() - MAX_STAGES_SHOWN
        );
    }
    if gantt || exposure {
        let tl = Timeline::compute(&outcome.schedule, &env, &CostModel::overlapped());
        if gantt {
            println!("\n{}", tl.gantt(&names, 72));
        }
        if exposure {
            let report = ExposureReport::from_timeline(&tl, &env);
            println!("\nworst drift-coupling exposures (need refocusing):");
            for (a, b, t) in report.worst_couplings(5) {
                println!("  {} -- {}: {}", names[a.index()], names[b.index()], t);
            }
        }
    }
    Ok(())
}

/// `qcp batch`: place every circuit on every environment in parallel.
fn run_batch(args: &[String]) -> Result<(), CliError> {
    let mut circuits_arg = None;
    let mut qasm_dir_arg = None;
    let mut envs_arg = None;
    let mut jobs = 0usize;
    let mut coupling = 10.0f64;
    let mut threshold = None;
    let mut k = 100usize;
    let mut lookahead = true;
    let mut fine_tune = 2usize;
    let mut commutation = false;
    let mut strategy = Strategy::Exact;
    let mut budget = SearchBudget::unlimited();
    let mut search_jobs = 1usize;
    let mut verify = false;
    let mut dedup = true;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--circuits" => circuits_arg = Some(value("--circuits")?),
            "--qasm-dir" => qasm_dir_arg = Some(value("--qasm-dir")?),
            "--envs" => envs_arg = Some(value("--envs")?),
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("bad job count: {e}"))?;
            }
            "--coupling" => coupling = parse_coupling(&value("--coupling")?)?,
            "--threshold" => {
                let units: f64 = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("bad threshold: {e}"))?;
                if units < 0.0 || units.is_nan() {
                    return Err(format!("--threshold must be non-negative, got {units}").into());
                }
                threshold = Some(Threshold::new(units));
            }
            "--auto" => threshold = None,
            "--k" => k = value("--k")?.parse().map_err(|e| format!("bad k: {e}"))?,
            "--no-lookahead" => lookahead = false,
            "--fine-tune" => {
                fine_tune = value("--fine-tune")?
                    .parse()
                    .map_err(|e| format!("bad rounds: {e}"))?;
            }
            "--commutation" => commutation = true,
            "--strategy" => strategy = value("--strategy")?.parse()?,
            "--budget-ms" => {
                budget = budget.with_deadline(parse_budget_ms(&value("--budget-ms")?)?);
            }
            "--budget-nodes" => {
                budget = budget.with_nodes(
                    value("--budget-nodes")?
                        .parse()
                        .map_err(|e| format!("bad node budget: {e}"))?,
                );
            }
            "--search-jobs" => {
                search_jobs = value("--search-jobs")?
                    .parse()
                    .map_err(|e| format!("bad search-jobs count: {e}"))?;
            }
            "--verify" => verify = true,
            "--no-dedup" => dedup = false,
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }

    let mut circuits: Vec<(String, Circuit)> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    if let Some(arg) = &circuits_arg {
        for name in split_list(arg) {
            let circuit = load_circuit(&name)?;
            circuits.push((name, circuit));
        }
    }
    if let Some(dir) = &qasm_dir_arg {
        let load = load_qasm_dir(dir)?;
        circuits.extend(load.circuits);
        skipped = load.skipped;
    }
    if circuits_arg.is_none() && qasm_dir_arg.is_none() {
        return Err("--circuits or --qasm-dir is required".into());
    }
    let envs: Vec<Environment> = split_list(&envs_arg.ok_or("--envs is required")?)
        .iter()
        .map(|name| load_env(name, coupling))
        .collect::<Result<_, _>>()?;
    if circuits.is_empty() || envs.is_empty() {
        return Err("the circuit list and --envs must both be non-empty".into());
    }

    let base = PlacerConfig::default()
        .candidates(k)
        .lookahead(lookahead)
        .fine_tuning(fine_tune)
        .commutation_aware(commutation)
        .strategy(strategy)
        .budget(budget)
        .search_jobs(search_jobs);
    let batch = match threshold {
        Some(t) => {
            let config = PlacerConfig {
                threshold: t,
                ..base
            };
            BatchPlacer::cross_named(&circuits, &envs, &config)
        }
        None => BatchPlacer::cross_named_auto(&circuits, &envs, &base),
    };
    let batch = batch.jobs(jobs).dedup(dedup);
    let report = batch.run();
    print!("{report}");
    if verify {
        let mut certified = 0usize;
        let mut bad = 0usize;
        for result in &report.results {
            let request = &batch.requests()[result.index];
            let Ok(outcome) = &result.outcome else {
                continue;
            };
            let place_request = PlaceRequest::new(&request.circuit, &request.environment)
                .config(request.config.clone());
            match PlacementCertifier.certify(&place_request, outcome) {
                Ok(_) => certified += 1,
                Err(violations) => {
                    bad += 1;
                    for line in &violations {
                        eprintln!("verify: {}: {line}", result.label);
                    }
                }
            }
        }
        if bad > 0 {
            return Err(CliError::verify(format!(
                "{bad} placement(s) failed verification"
            )));
        }
        println!("verified: {certified} placement(s) certified");
    }
    if !skipped.is_empty() {
        return Err(CliError::input(format!(
            "skipped {} malformed QASM file(s); the rest of the batch ran to completion",
            skipped.len()
        )));
    }
    Ok(())
}

/// `qcp lint`: static circuit analysis — structural warnings plus
/// width/depth/interaction statistics, with source spans for QASM inputs.
fn run_lint(args: &[String]) -> Result<(), CliError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut deny = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--qasm-dir" => {
                let dir = it.next().ok_or("--qasm-dir needs a value")?;
                let entries =
                    std::fs::read_dir(dir).map_err(|e| format!("cannot read `{dir}`: {e}"))?;
                let mut paths: Vec<std::path::PathBuf> = entries
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|ext| ext == "qasm"))
                    .collect();
                paths.sort();
                if paths.is_empty() {
                    return Err(format!("`{dir}` contains no .qasm files").into());
                }
                inputs.extend(paths.into_iter().map(|p| p.display().to_string()));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`").into()),
            input => inputs.push(input.to_string()),
        }
    }
    if inputs.is_empty() {
        return Err("qcp lint needs at least one input (file, library name, or --qasm-dir)".into());
    }

    let mut total_findings = 0usize;
    // Combined fingerprint: FNV-1a over the per-file report fingerprints in
    // input order, so CI can pin the whole corpus with one value.
    let mut combined: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |fp: u64| {
        for byte in fp.to_le_bytes() {
            combined ^= u64::from(byte);
            combined = combined.wrapping_mul(0x0100_0000_01b3);
        }
    };

    for input in &inputs {
        let report = lint_input(input)?;
        let s = &report.stats;
        println!(
            "{input}: {} qubits, {} gates ({} two-qubit), depth {}, \
             {} interaction pair(s), max degree {}, {} component(s)",
            s.qubits,
            s.gates,
            s.two_qubit_gates,
            s.depth,
            s.interaction_pairs,
            s.max_degree,
            s.components
        );
        for finding in &report.findings {
            println!("{input}:{finding}");
        }
        total_findings += report.findings.len();
        fold(report.fingerprint());
    }

    println!(
        "lint: {total_findings} finding(s) in {} file(s) [fingerprint {combined:#018x}]",
        inputs.len()
    );
    if deny && total_findings > 0 {
        return Err(CliError::verify(format!(
            "--deny: {total_findings} finding(s)"
        )));
    }
    Ok(())
}

/// `qcp serve`: run the fault-tolerant placement daemon until drained
/// (`POST /admin/drain`, or EOF / `drain` on an interactive stdin).
fn run_serve(args: &[String]) -> Result<(), CliError> {
    use std::io::IsTerminal;

    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
            }
            "--queue-depth" => {
                let depth: usize = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("bad queue depth: {e}"))?;
                config = config.queue_depth(depth);
            }
            "--budget-ms" => {
                config.default_budget_ms = value("--budget-ms")?
                    .parse()
                    .map_err(|e| format!("bad budget: {e}"))?;
            }
            "--max-budget-ms" => {
                config.max_budget_ms = value("--max-budget-ms")?
                    .parse()
                    .map_err(|e| format!("bad budget ceiling: {e}"))?;
            }
            "--min-budget-ms" => {
                let ms: u64 = value("--min-budget-ms")?
                    .parse()
                    .map_err(|e| format!("bad budget floor: {e}"))?;
                config = config.min_budget_ms(ms);
            }
            "--max-body-kb" => {
                let kb: usize = value("--max-body-kb")?
                    .parse()
                    .map_err(|e| format!("bad body cap: {e}"))?;
                config.max_body_bytes = kb.saturating_mul(1024);
            }
            "--cache-entries" => {
                let entries: usize = value("--cache-entries")?
                    .parse()
                    .map_err(|e| format!("bad cache capacity: {e}"))?;
                config = config.cache_entries(entries);
            }
            "--chaos" => config.chaos = true,
            "--no-admin" => config.admin = false,
            other => return Err(CliError::input(format!("unknown option `{other}`"))),
        }
    }

    let server = Server::start(config)
        .map_err(|e| CliError::input(format!("cannot start the server: {e}")))?;
    println!(
        "qcp serve: listening on http://{} ({} worker(s))",
        server.local_addr(),
        server.worker_count()
    );
    println!(
        "qcp serve: POST /place?circuit=<name>&env=<spec>[&strategy=…&budget_ms=…], \
         GET /healthz, POST /admin/drain to stop"
    );

    // Interactive runs can also drain from the keyboard; a daemonized
    // process (stdin is /dev/null or a pipe) must NOT watch stdin, or it
    // would drain instantly on EOF.
    if std::io::stdin().is_terminal() {
        let handle = server.drain_handle();
        std::thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match std::io::stdin().read_line(&mut line) {
                    Ok(0) | Err(_) => {
                        handle.drain();
                        break;
                    }
                    Ok(_) if matches!(line.trim(), "drain" | "quit" | "exit") => {
                        handle.drain();
                        break;
                    }
                    Ok(_) => {}
                }
            }
        });
    }

    let stats = server.join();
    println!(
        "qcp serve: drained; ok={} client_errors={} shed={} oversize={} \
         slow_clients={} panics={} budget_exhausted={} \
         cache_hits={} cache_misses={} cache_remapped={}",
        stats.served_ok,
        stats.client_errors,
        stats.shed,
        stats.oversize,
        stats.slow_clients,
        stats.panics,
        stats.budget_exhausted,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_remapped
    );
    Ok(())
}

/// Lints one input: `*.qasm` files keep their source spans and barrier
/// structure; everything else resolves like `--circuit` does.
fn lint_input(input: &str) -> Result<LintReport, String> {
    if input.ends_with(".qasm") {
        let text =
            std::fs::read_to_string(input).map_err(|e| format!("cannot read `{input}`: {e}"))?;
        let parsed =
            qcp::circuit::qasm::parse(&text).map_err(|e| format!("parsing `{input}`: {e}"))?;
        for w in &parsed.warnings {
            eprintln!("warning: {input}:{w}");
        }
        return Ok(lint_qasm(&parsed));
    }
    let circuit = load_circuit(input)?;
    Ok(lint_circuit(&circuit))
}

fn split_list(arg: &str) -> Vec<String> {
    arg.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

fn parse_budget_ms(text: &str) -> Result<std::time::Duration, String> {
    let ms: u64 = text.parse().map_err(|e| format!("bad budget: {e}"))?;
    Ok(std::time::Duration::from_millis(ms))
}

fn parse_coupling(text: &str) -> Result<f64, String> {
    match text.parse::<f64>() {
        Ok(units) if units.is_finite() && units >= 0.0 => Ok(units),
        Ok(units) => Err(format!(
            "--coupling must be finite and non-negative, got {units}"
        )),
        Err(e) => Err(format!("bad coupling: {e}")),
    }
}

fn build_topology(spec: &str, coupling: f64) -> Result<Environment, String> {
    let parsed: TopologySpec = spec.parse().map_err(|e| format!("{e}"))?;
    Ok(parsed.build(Delays::uniform(coupling)))
}

fn circuit_arg_display(c: &Circuit) -> String {
    format!("{}q/{}g", c.qubit_count(), c.gate_count())
}

fn load_circuit(arg: &str) -> Result<Circuit, String> {
    if let Some(c) = library::named(arg) {
        return Ok(c);
    }
    if arg.ends_with(".qasm") {
        return load_qasm_file(arg);
    }
    let text = std::fs::read_to_string(arg)
        .map_err(|e| format!("`{arg}` is not a library circuit and cannot be read: {e}"))?;
    qcp::circuit::text::parse(&text).map_err(|e| format!("parsing `{arg}`: {e}"))
}

/// Reads and parses one OpenQASM 2.0 file; dropped-construct warnings go
/// to stderr, prefixed with the file and source position.
fn load_qasm_file(path: &str) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    // Diagnostics carry the source position in the standard
    // `path:line:col` shape so editors and CI log scrapers can jump to it.
    let parsed = qcp::circuit::qasm::parse(&text).map_err(|e| match e.span() {
        Some(span) => format!("{path}:{}:{}: {e}", span.line, span.col),
        None => format!("parsing `{path}`: {e}"),
    })?;
    for w in &parsed.warnings {
        eprintln!("warning: {path}:{w}");
    }
    Ok(parsed.circuit)
}

/// The result of scanning a QASM directory: the circuits that parsed,
/// plus a `path:line:col: message` diagnostic per malformed file.
struct QasmDirLoad {
    circuits: Vec<(String, Circuit)>,
    skipped: Vec<String>,
}

/// Ingests every `*.qasm` file in `dir` (sorted by file name); the file
/// stem becomes the circuit's batch label. A malformed file is skipped —
/// with a per-file diagnostic on stderr carrying the source position —
/// instead of sinking the whole batch; only a directory with *no*
/// parseable file at all is an error.
fn load_qasm_dir(dir: &str) -> Result<QasmDirLoad, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read `{dir}`: {e}"))?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "qasm"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("`{dir}` contains no .qasm files"));
    }
    let total = paths.len();
    let mut load = QasmDirLoad {
        circuits: Vec::new(),
        skipped: Vec::new(),
    };
    for p in paths {
        let path = p.display().to_string();
        let stem = p
            .file_stem()
            .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
        match load_qasm_file(&path) {
            Ok(circuit) => load.circuits.push((stem, circuit)),
            Err(message) => {
                eprintln!("warning: skipping malformed `{path}`: {message}");
                load.skipped.push(message);
            }
        }
    }
    if load.circuits.is_empty() {
        return Err(format!(
            "all {total} .qasm file(s) in `{dir}` are malformed; first: {}",
            load.skipped.first().map_or("", String::as_str)
        ));
    }
    Ok(load)
}

/// Resolves an environment argument: a molecule name, then a topology
/// spec (`grid:8x8`), then a file in the `qcp_env::text` format.
fn load_env(arg: &str, coupling: f64) -> Result<Environment, String> {
    if let Some(env) = molecules::named(arg) {
        return Ok(env);
    }
    let topology_err = match arg.parse::<TopologySpec>() {
        Ok(spec) => return Ok(spec.build(Delays::uniform(coupling))),
        Err(e) => e,
    };
    // Not a valid spec: fall back to reading a file (paths may legally
    // contain `:`), but keep the more specific error for spec-shaped args
    // that name no file.
    match std::fs::read_to_string(arg) {
        Ok(text) => qcp::env::text::parse(&text).map_err(|e| format!("parsing `{arg}`: {e}")),
        Err(_) if arg.contains(':') => Err(topology_err.to_string()),
        Err(e) => Err(format!(
            "`{arg}` is not a library molecule or topology spec and cannot be read: {e}"
        )),
    }
}
