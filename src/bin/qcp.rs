//! `qcp` — command-line quantum circuit placement.
//!
//! ```console
//! $ qcp molecules                         # list built-in environments
//! $ qcp circuits                          # list built-in circuits
//! $ qcp place --circuit qft6 --env trans-crotonic-acid --threshold 200
//! $ qcp place --circuit my.qc --env my.mol --auto --gantt
//! ```
//!
//! Circuits and environments are looked up in the built-in libraries
//! first, then read as files in the text formats of `qcp_circuit::text`
//! and `qcp_env::text`.

use std::process::ExitCode;

use qcp::place::fidelity::ExposureReport;
use qcp::place::timeline::Timeline;
use qcp::prelude::*;
use qcp_circuit::library;
use qcp_env::molecules;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("molecules") => {
            for name in molecules::NAMES {
                let env = molecules::named(name).expect("registry name");
                println!("{name}: {} nuclei", env.qubit_count());
            }
            ExitCode::SUCCESS
        }
        Some("circuits") => {
            for name in library::NAMES {
                let c = library::named(name).expect("registry name");
                println!(
                    "{name}: {} qubits, {} gates ({} two-qubit)",
                    c.qubit_count(),
                    c.gate_count(),
                    c.two_qubit_gate_count()
                );
            }
            ExitCode::SUCCESS
        }
        Some("place") => match run_place(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!(
                "usage: qcp <molecules|circuits|place> [options]\n\
                 place options:\n\
                 \x20 --circuit <name|file>   circuit (library name or text file)\n\
                 \x20 --env <name|file>       environment (library name or text file)\n\
                 \x20 --threshold <units>     fast-interaction threshold\n\
                 \x20 --auto                  use the connectivity threshold (default)\n\
                 \x20 --k <n>                 candidate monomorphisms (default 100)\n\
                 \x20 --no-lookahead          greedy stage selection\n\
                 \x20 --fine-tune <rounds>    hill-climbing sweeps (default 2)\n\
                 \x20 --commutation           commutation-aware extraction\n\
                 \x20 --gantt                 print the timed pulse chart\n\
                 \x20 --exposure              print idle/coupling exposure"
            );
            ExitCode::FAILURE
        }
    }
}

fn run_place(args: &[String]) -> Result<(), String> {
    let mut circuit_arg = None;
    let mut env_arg = None;
    let mut threshold = None;
    let mut k = 100usize;
    let mut lookahead = true;
    let mut fine_tune = 2usize;
    let mut commutation = false;
    let mut gantt = false;
    let mut exposure = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--circuit" => circuit_arg = Some(value("--circuit")?),
            "--env" => env_arg = Some(value("--env")?),
            "--threshold" => {
                threshold = Some(
                    value("--threshold")?
                        .parse::<f64>()
                        .map_err(|e| format!("bad threshold: {e}"))?,
                )
            }
            "--auto" => threshold = None,
            "--k" => k = value("--k")?.parse().map_err(|e| format!("bad k: {e}"))?,
            "--no-lookahead" => lookahead = false,
            "--fine-tune" => {
                fine_tune = value("--fine-tune")?
                    .parse()
                    .map_err(|e| format!("bad rounds: {e}"))?
            }
            "--commutation" => commutation = true,
            "--gantt" => gantt = true,
            "--exposure" => exposure = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    let circuit = load_circuit(&circuit_arg.ok_or("--circuit is required")?)?;
    let env = load_env(&env_arg.ok_or("--env is required")?)?;
    let threshold = match threshold {
        Some(units) if units < 0.0 || units.is_nan() => {
            return Err(format!("--threshold must be non-negative, got {units}"))
        }
        Some(units) => Threshold::new(units),
        None => env
            .connectivity_threshold()
            .ok_or("environment is disconnected; pass --threshold explicitly")?,
    };

    let config = PlacerConfig::with_threshold(threshold)
        .candidates(k)
        .lookahead(lookahead)
        .fine_tuning(fine_tune)
        .commutation_aware(commutation);
    let placer = Placer::new(&env, config);
    let outcome = placer.place(&circuit).map_err(|e| e.to_string())?;

    println!(
        "placed `{}` ({} qubits, {} gates) on `{}` ({} nuclei) at threshold {}",
        circuit_arg_display(&circuit),
        circuit.qubit_count(),
        circuit.gate_count(),
        env.name(),
        env.qubit_count(),
        threshold
    );
    println!(
        "runtime {}  |  {} subcircuit(s), {} swap(s)",
        outcome.runtime,
        outcome.subcircuit_count(),
        outcome.swap_count()
    );
    let names = env.nucleus_names();
    for (si, stage) in outcome.stages.iter().enumerate() {
        let map: Vec<String> = (0..circuit.qubit_count())
            .map(|qi| {
                let v = stage.placement.physical(Qubit::new(qi));
                format!("q{qi}→{}", names[v.index()])
            })
            .collect();
        println!(
            "stage {}: {} gates, {} swap levels in, [{}]",
            si + 1,
            stage.subcircuit.gate_count(),
            stage.swaps.depth(),
            map.join(", ")
        );
    }
    if gantt || exposure {
        let tl = Timeline::compute(&outcome.schedule, &env, &CostModel::overlapped());
        if gantt {
            println!("\n{}", tl.gantt(&names, 72));
        }
        if exposure {
            let report = ExposureReport::from_timeline(&tl, &env);
            println!("\nworst drift-coupling exposures (need refocusing):");
            for (a, b, t) in report.worst_couplings(5) {
                println!("  {} -- {}: {}", names[a.index()], names[b.index()], t);
            }
        }
    }
    Ok(())
}

fn circuit_arg_display(c: &Circuit) -> String {
    format!("{}q/{}g", c.qubit_count(), c.gate_count())
}

fn load_circuit(arg: &str) -> Result<Circuit, String> {
    if let Some(c) = library::named(arg) {
        return Ok(c);
    }
    let text = std::fs::read_to_string(arg)
        .map_err(|e| format!("`{arg}` is not a library circuit and cannot be read: {e}"))?;
    qcp::circuit::text::parse(&text).map_err(|e| format!("parsing `{arg}`: {e}"))
}

fn load_env(arg: &str) -> Result<Environment, String> {
    if let Some(env) = molecules::named(arg) {
        return Ok(env);
    }
    let text = std::fs::read_to_string(arg)
        .map_err(|e| format!("`{arg}` is not a library molecule and cannot be read: {e}"))?;
    qcp::env::text::parse(&text).map_err(|e| format!("parsing `{arg}`: {e}"))
}
